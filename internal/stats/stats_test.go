package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Fatalf("N/Sum/Mean = %d/%v/%v", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 || s.Median() != 3 {
		t.Fatalf("Min/Max/Median = %v/%v/%v", s.Min(), s.Max(), s.Median())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := NewSample()
	s.Add(0)
	s.Add(10)
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", got)
	}
	if got := s.Quantile(0.25); got != 2.5 {
		t.Fatalf("Quantile(0.25) = %v, want 2.5", got)
	}
}

func TestQuantileEmptyAndExtremes(t *testing.T) {
	s := NewSample()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	s.Add(7)
	if s.Quantile(0) != 7 || s.Quantile(1) != 7 || s.P999() != 7 {
		t.Fatal("single-element quantiles should all be the element")
	}
}

func TestQuantileMatchesSortProperty(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := NewSample()
		for _, v := range xs {
			s.Add(v)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		// Quantile endpoints must be min/max, and quantiles must be
		// monotone in q.
		if s.Quantile(0) != sorted[0] || s.Quantile(1) != sorted[len(sorted)-1] {
			return false
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStddev(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestLogChoose(t *testing.T) {
	if got := math.Exp(LogChoose(5, 2)); math.Abs(got-10) > 1e-9 {
		t.Fatalf("C(5,2) = %v, want 10", got)
	}
	if got := math.Exp(LogChoose(52, 5)); math.Abs(got-2598960) > 1 {
		t.Fatalf("C(52,5) = %v, want 2598960", got)
	}
	if !math.IsInf(LogChoose(5, 9), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Fatal("out-of-range choose should be -inf")
	}
}

func TestBinomialTailExactSmall(t *testing.T) {
	// X ~ Bin(3, 0.5): P(X > 1) = P(2) + P(3) = 3/8 + 1/8 = 0.5.
	if got := BinomialTail(3, 1, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("BinomialTail(3,1,0.5) = %v, want 0.5", got)
	}
	// P(X > 2) for Bin(2, p) is 0.
	if got := BinomialTail(2, 2, 0.3); got != 0 {
		t.Fatalf("BinomialTail(2,2,.3) = %v, want 0", got)
	}
}

func TestBinomialTailEdges(t *testing.T) {
	if BinomialTail(10, 5, 0) != 0 {
		t.Fatal("p=0 should give 0")
	}
	if BinomialTail(10, 5, 1) != 1 {
		t.Fatal("p=1 with r<n should give 1")
	}
}

// TestDurabilityTrackDecode reproduces the §6 claim: with ~8% in-track
// redundancy and sector failure probability 1e-3, the probability of
// failing to decode a track is astronomically small (paper: < 1e-24).
func TestDurabilityTrackDecode(t *testing.T) {
	// 100 information + 8 redundancy sectors, fails when >8 of 108 fail.
	p := BinomialTail(108, 8, 1e-3)
	if p > 1e-14 {
		t.Fatalf("track decode failure probability = %v, want ≤ 1e-14", p)
	}
	if p <= 0 {
		t.Fatalf("probability should be positive, got %v", p)
	}
	// With 10 redundancy sectors it must be even smaller.
	p10 := BinomialTail(110, 10, 1e-3)
	if p10 >= p {
		t.Fatalf("more redundancy should reduce failure: %v >= %v", p10, p)
	}
}

func TestBinomialTailMonotonicity(t *testing.T) {
	err := quick.Check(func(seed uint8) bool {
		n := 20 + int(seed)%80
		p := 0.001 + float64(seed%10)*0.01
		prev := 1.1
		for r := 0; r < n; r++ {
			v := BinomialTail(n, r, p)
			if v > prev+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeakOverMean(t *testing.T) {
	// Constant series: peak == mean at any window.
	flat := []float64{5, 5, 5, 5, 5, 5}
	for w := 1; w <= 6; w++ {
		if got := PeakOverMean(flat, w); math.Abs(got-1) > 1e-12 {
			t.Fatalf("flat series window %d: %v, want 1", w, got)
		}
	}
	// One spike: ratio shrinks as the window grows.
	spike := make([]float64, 30)
	for i := range spike {
		spike[i] = 1
	}
	spike[10] = 100
	prev := math.Inf(1)
	for _, w := range []int{1, 5, 10, 30} {
		got := PeakOverMean(spike, w)
		if got > prev {
			t.Fatalf("peak/mean should shrink with window: w=%d %v > %v", w, got, prev)
		}
		prev = got
	}
	if PeakOverMean(spike, 0) != 0 || PeakOverMean(spike, 31) != 0 {
		t.Fatal("invalid windows should return 0")
	}
	if PeakOverMean([]float64{0, 0}, 1) != 0 {
		t.Fatal("all-zero series should return 0")
	}
}

func TestHistogramShares(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Add(5, 5)    // bucket 0
	h.Add(50, 50)  // bucket 1
	h.Add(500, 45) // overflow
	cs := h.CountShare()
	for i, want := range []float64{1.0 / 3, 1.0 / 3, 1.0 / 3} {
		if math.Abs(cs[i]-want) > 1e-12 {
			t.Fatalf("count share[%d] = %v, want %v", i, cs[i], want)
		}
	}
	ss := h.SumShare()
	for i, want := range []float64{0.05, 0.5, 0.45} {
		if math.Abs(ss[i]-want) > 1e-12 {
			t.Fatalf("sum share[%d] = %v, want %v", i, ss[i], want)
		}
	}
	if h.TotalCount() != 3 || h.TotalSum() != 100 {
		t.Fatalf("totals = %d/%v", h.TotalCount(), h.TotalSum())
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram([]float64{10, 5})
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{512, "512B"},
		{4 * 1024 * 1024, "4MiB"},
		{1.5 * 1024, "1.5KiB"},
		{2 * 1024 * 1024 * 1024 * 1024, "2TiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Fatalf("FormatBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0s"},
		{0.000002, "2us"},
		{0.0042, "4.2ms"},
		{5, "5.0s"},
		{90, "1.5m"},
		{5400, "1.5h"},
		{-90, "-1.5m"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.in); got != c.want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
