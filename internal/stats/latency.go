package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Summary condenses one request class's latency sample for reports:
// the serving-layer counterpart of the paper's time-to-first-byte
// percentiles (§7.2).
type Summary struct {
	N    int
	Mean float64
	P50  float64
	P90  float64
	P99  float64
	P999 float64
	Max  float64
}

// Summarize computes a Summary from a sample.
func Summarize(s *Sample) Summary {
	return Summary{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  s.Quantile(0.5),
		P90:  s.Quantile(0.9),
		P99:  s.Quantile(0.99),
		P999: s.P999(),
		Max:  s.Max(),
	}
}

// Recorder accumulates latency observations per request class. Unlike
// Sample it is safe for concurrent use: the gateway's workers and the
// load generator's closed-loop clients record into it from many
// goroutines.
type Recorder struct {
	mu      sync.Mutex
	classes map[string]*Sample
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{classes: make(map[string]*Sample)}
}

// Observe records one latency (seconds) under class.
func (r *Recorder) Observe(class string, seconds float64) {
	r.mu.Lock()
	s := r.classes[class]
	if s == nil {
		s = NewSample()
		r.classes[class] = s
	}
	s.Add(seconds)
	r.mu.Unlock()
}

// Classes returns the recorded class names, sorted.
func (r *Recorder) Classes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.classes))
	for c := range r.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Summary reports the summary of one class (zero-valued if the class
// was never observed).
func (r *Recorder) Summary(class string) Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.classes[class]
	if s == nil {
		return Summary{}
	}
	return Summarize(s)
}

// Summaries reports every class's summary.
func (r *Recorder) Summaries() map[string]Summary {
	out := make(map[string]Summary)
	for _, c := range r.Classes() {
		out[c] = r.Summary(c)
	}
	return out
}

// Table renders the recorder as an aligned latency report.
func (r *Recorder) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %10s %10s %10s %10s %10s\n",
		"class", "n", "mean", "p50", "p99", "p99.9", "max")
	for _, c := range r.Classes() {
		s := r.Summary(c)
		fmt.Fprintf(&b, "%-10s %8d %10s %10s %10s %10s %10s\n",
			c, s.N, FormatDuration(s.Mean), FormatDuration(s.P50),
			FormatDuration(s.P99), FormatDuration(s.P999), FormatDuration(s.Max))
	}
	return b.String()
}
