package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Summary condenses one request class's latency sample for reports:
// the serving-layer counterpart of the paper's time-to-first-byte
// percentiles (§7.2).
type Summary struct {
	N    int
	Mean float64
	P50  float64
	P90  float64
	P99  float64
	P999 float64
	Max  float64
}

// Summarize computes a Summary from a sample.
func Summarize(s *Sample) Summary {
	return Summary{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  s.Quantile(0.5),
		P90:  s.Quantile(0.9),
		P99:  s.Quantile(0.99),
		P999: s.P999(),
		Max:  s.Max(),
	}
}

// recorderShards stripes each class's observations so concurrent
// gateway workers never serialize on one mutex. Power of two so the
// shard pick is a mask.
const recorderShards = 16

// recorderShard is one stripe: a private mutex and sample slice. The
// pad keeps stripes on separate cachelines.
type recorderShard struct {
	mu  sync.Mutex
	xs  []float64
	sum float64
	_   [64]byte
}

// classRecorder holds one request class's stripes.
type classRecorder struct {
	shards [recorderShards]recorderShard
}

// shardIndex spreads observations across stripes by hashing the value
// bits: real latencies differ in their mantissa essentially always, so
// concurrent observers land on different stripes without needing a
// per-CPU hint.
func shardIndex(v float64) int {
	h := math.Float64bits(v) * 0x9e3779b97f4a7c15
	return int(h >> 60 & (recorderShards - 1))
}

func (c *classRecorder) observe(v float64) {
	sh := &c.shards[shardIndex(v)]
	sh.mu.Lock()
	sh.xs = append(sh.xs, v)
	sh.sum += v
	sh.mu.Unlock()
}

// merge copies every stripe into one Sample (copy-on-read): readers
// summarize the copy while writers keep appending to the stripes.
func (c *classRecorder) merge() *Sample {
	s := NewSample()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.xs = append(s.xs, sh.xs...)
		s.sum += sh.sum
		sh.mu.Unlock()
	}
	return s
}

// Recorder accumulates latency observations per request class. Unlike
// Sample it is safe for concurrent use: the gateway's workers and the
// load generator's closed-loop clients record into it from many
// goroutines. The hot path is sharded — a class lookup on an
// atomically published map, then one stripe mutex out of 16 — so
// concurrent observers do not serialize; snapshots (Summary,
// Summaries, Table) merge the stripes copy-on-read.
type Recorder struct {
	classes atomic.Pointer[map[string]*classRecorder]
	mu      sync.Mutex // guards class-map copy-on-write growth
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	m := make(map[string]*classRecorder)
	r.classes.Store(&m)
	return r
}

// class resolves (or creates) one class's stripes. The read path is a
// single atomic load; creation copies the map, which only happens a
// handful of times over a process's life.
func (r *Recorder) class(name string) *classRecorder {
	if c := (*r.classes.Load())[name]; c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.classes.Load()
	if c := old[name]; c != nil {
		return c
	}
	next := make(map[string]*classRecorder, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	c := &classRecorder{}
	next[name] = c
	r.classes.Store(&next)
	return c
}

// Observe records one latency (seconds) under class.
func (r *Recorder) Observe(class string, seconds float64) {
	r.class(class).observe(seconds)
}

// Classes returns the recorded class names, sorted.
func (r *Recorder) Classes() []string {
	m := *r.classes.Load()
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Summary reports the summary of one class (zero-valued if the class
// was never observed), computed from a copy-on-read merge of the
// class's stripes.
func (r *Recorder) Summary(class string) Summary {
	c := (*r.classes.Load())[class]
	if c == nil {
		return Summary{}
	}
	return Summarize(c.merge())
}

// Summaries reports every class's summary.
func (r *Recorder) Summaries() map[string]Summary {
	out := make(map[string]Summary)
	for _, c := range r.Classes() {
		out[c] = r.Summary(c)
	}
	return out
}

// Table renders the recorder as an aligned latency report.
func (r *Recorder) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %10s %10s %10s %10s %10s\n",
		"class", "n", "mean", "p50", "p99", "p99.9", "max")
	for _, c := range r.Classes() {
		s := r.Summary(c)
		fmt.Fprintf(&b, "%-10s %8d %10s %10s %10s %10s %10s\n",
			c, s.N, FormatDuration(s.Mean), FormatDuration(s.P50),
			FormatDuration(s.P99), FormatDuration(s.P999), FormatDuration(s.Max))
	}
	return b.String()
}
