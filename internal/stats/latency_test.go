package stats

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestSummaryTinyN(t *testing.T) {
	// N = 0: everything zero.
	if got := Summarize(NewSample()); got != (Summary{}) {
		t.Fatalf("empty summary = %+v, want zero", got)
	}
	// N = 1: every statistic collapses to the single observation.
	s := NewSample()
	s.Add(0.25)
	got := Summarize(s)
	want := Summary{N: 1, Mean: 0.25, P50: 0.25, P90: 0.25, P99: 0.25, P999: 0.25, Max: 0.25}
	if got != want {
		t.Fatalf("N=1 summary = %+v, want %+v", got, want)
	}
	// N = 2: percentiles interpolate between the two, max is the larger.
	s = NewSample()
	s.Add(1)
	s.Add(3)
	got = Summarize(s)
	if got.N != 2 || got.Mean != 2 || got.P50 != 2 || got.Max != 3 {
		t.Fatalf("N=2 summary = %+v", got)
	}
	if got.P99 <= got.P50 || got.P99 > 3 || got.P999 < got.P99 {
		t.Fatalf("N=2 tail percentiles out of order: %+v", got)
	}
	// N = 3: exact ranks at the endpoints.
	s = NewSample()
	for _, v := range []float64{5, 1, 9} {
		s.Add(v)
	}
	got = Summarize(s)
	if got.N != 3 || got.Mean != 5 || got.P50 != 5 || got.Max != 9 {
		t.Fatalf("N=3 summary = %+v", got)
	}
}

func TestQuantileSingleAndEndpoints(t *testing.T) {
	s := NewSample()
	if s.Quantile(0) != 0 || s.Quantile(1) != 0 {
		t.Fatal("empty sample endpoints must be 0")
	}
	s.Add(-2.5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != -2.5 {
			t.Fatalf("Quantile(%v) = %v on single obs, want -2.5", q, got)
		}
	}
	// Out-of-range q clamps to the endpoints.
	s.Add(4)
	if s.Quantile(-0.5) != -2.5 || s.Quantile(1.5) != 4 {
		t.Fatalf("out-of-range q must clamp: q<0 -> %v, q>1 -> %v",
			s.Quantile(-0.5), s.Quantile(1.5))
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if got := r.Summary("put"); got != (Summary{}) {
		t.Fatalf("unseen class summary = %+v, want zero", got)
	}
	r.Observe("put", 0.010)
	r.Observe("put", 0.030)
	r.Observe("get", 0.002)
	if got := r.Classes(); len(got) != 2 || got[0] != "get" || got[1] != "put" {
		t.Fatalf("classes = %v", got)
	}
	put := r.Summary("put")
	if put.N != 2 || math.Abs(put.Mean-0.020) > 1e-12 || put.Max != 0.030 {
		t.Fatalf("put summary = %+v", put)
	}
	all := r.Summaries()
	if all["get"].N != 1 || all["put"].N != 2 {
		t.Fatalf("summaries = %+v", all)
	}
	if !strings.Contains(r.Table(), "put") {
		t.Fatalf("table missing class:\n%s", r.Table())
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines
// across several classes and checks the merged totals are exact: the
// sharded stripes must lose nothing, and snapshots taken mid-flight
// must never race with writers.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const (
		goroutines = 8
		perG       = 2000
	)
	classes := []string{"put", "get", "delete"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := float64(g*perG+i+1) * 1e-6
				r.Observe(classes[i%len(classes)], v)
				if i%500 == 0 {
					// Concurrent snapshot while writers are running.
					_ = r.Summary(classes[g%len(classes)])
				}
			}
		}(g)
	}
	wg.Wait()
	totalN := 0
	totalSum := 0.0
	for _, c := range classes {
		s := r.Summary(c)
		totalN += s.N
		totalSum += s.Mean * float64(s.N)
	}
	if totalN != goroutines*perG {
		t.Fatalf("observations lost: n = %d, want %d", totalN, goroutines*perG)
	}
	want := float64(goroutines*perG) * float64(goroutines*perG+1) / 2 * 1e-6
	if math.Abs(totalSum-want)/want > 1e-9 {
		t.Fatalf("sum = %v, want %v", totalSum, want)
	}
}

// BenchmarkRecorderObserveParallel proves the sharded hot path no
// longer serializes gateway workers on one global mutex: with 16
// stripes per class, parallel observers contend only when their value
// bits hash to the same stripe.
func BenchmarkRecorderObserveParallel(b *testing.B) {
	r := NewRecorder()
	r.Observe("put", 1e-6)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-6
		for pb.Next() {
			r.Observe("put", v)
			v += 3.1e-7
		}
	})
}

func BenchmarkRecorderObserve(b *testing.B) {
	r := NewRecorder()
	for i := 0; i < b.N; i++ {
		r.Observe("put", float64(i)*1e-7)
	}
	b.StopTimer()
	if r.Summary("put").N != b.N {
		b.Fatal("lost observations")
	}
}

func ExampleRecorder() {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Observe("put", float64(i)*1e-3)
	}
	s := r.Summary("put")
	fmt.Printf("n=%d p50=%s p99=%s\n", s.N, FormatDuration(s.P50), FormatDuration(s.P99))
	// Output: n=100 p50=50.5ms p99=99.0ms
}
