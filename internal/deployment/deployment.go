// Package deployment models a multi-library Silica site (§6): platters
// of one platter-set spread within and across libraries so that any
// single blast zone — or a whole library — holds at most its fair
// share of a set, and recovery reads fan out across libraries,
// load-balancing the fleet. Libraries are independent (no shared
// drives or shuttles), so the deployment routes each request to the
// owning library and the simulation composes per-library digital
// twins.
package deployment

import (
	"fmt"

	"silica/internal/controller"
	"silica/internal/library"
	"silica/internal/media"
	"silica/internal/stats"
)

// Config sizes a deployment.
type Config struct {
	Libraries int
	// Library is the per-library configuration; its Platters field is
	// ignored in favour of TotalPlatters.
	Library       library.Config
	TotalPlatters int
	// SetInfo/SetRed shape platter-sets spread across libraries.
	SetInfo, SetRed int
	Seed            uint64
}

// DefaultConfig is a three-library site with the paper's 16+3 sets.
func DefaultConfig() Config {
	lib := library.DefaultConfig()
	return Config{
		Libraries:     3,
		Library:       lib,
		TotalPlatters: 6000,
		SetInfo:       16,
		SetRed:        3,
	}
}

// location is a platter's placement.
type location struct {
	lib   int
	local media.PlatterID
}

// Deployment is a fleet of libraries with a shared platter directory.
type Deployment struct {
	cfg  Config
	libs []*library.Library
	// directory maps global platter IDs to per-library local IDs.
	directory []location
	// members[set] lists the global IDs of one platter-set.
	members     [][]media.PlatterID
	setOf       []int
	posOf       []int
	unavailable map[media.PlatterID]bool

	// Per-library request batches accumulated by Submit.
	batches  [][]*controller.Request
	loads    []int64
	complete *stats.Sample
	nextID   controller.RequestID

	Unrecoverable int
	InternalReads int
}

// New builds the deployment and spreads platter-sets across libraries
// diagonally: member m of set s lands in library (s+m) mod L, so no
// library holds more than ceil(size/L) members of any set.
func New(cfg Config) (*Deployment, error) {
	if cfg.Libraries < 1 {
		return nil, fmt.Errorf("deployment: need at least one library")
	}
	if cfg.TotalPlatters < 1 {
		return nil, fmt.Errorf("deployment: need platters")
	}
	if cfg.SetInfo < 1 || cfg.SetRed < 0 {
		return nil, fmt.Errorf("deployment: bad set shape %d+%d", cfg.SetInfo, cfg.SetRed)
	}
	d := &Deployment{
		cfg:         cfg,
		directory:   make([]location, cfg.TotalPlatters),
		setOf:       make([]int, cfg.TotalPlatters),
		posOf:       make([]int, cfg.TotalPlatters),
		unavailable: make(map[media.PlatterID]bool),
		batches:     make([][]*controller.Request, cfg.Libraries),
		loads:       make([]int64, cfg.Libraries),
		complete:    stats.NewSample(),
	}
	size := cfg.SetInfo + cfg.SetRed
	counts := make([]int, cfg.Libraries)
	for g := 0; g < cfg.TotalPlatters; g++ {
		set := g / size
		pos := g % size
		// Rotate each set by a hashed offset: members still spread
		// maximally (consecutive positions hit consecutive libraries)
		// but the library index carries no arithmetic correlation with
		// the global platter ID that a strided workload could align
		// with.
		lib := (pos + setRotation(uint64(set), cfg.Seed)) % cfg.Libraries
		d.setOf[g] = set
		d.posOf[g] = pos
		d.directory[g] = location{lib: lib, local: media.PlatterID(counts[lib])}
		counts[lib]++
		if pos == 0 {
			d.members = append(d.members, make([]media.PlatterID, 0, size))
		}
		d.members[set] = append(d.members[set], media.PlatterID(g))
	}
	for l := 0; l < cfg.Libraries; l++ {
		libCfg := cfg.Library
		libCfg.Platters = counts[l]
		libCfg.Seed = cfg.Seed + uint64(l)*7919
		lb, err := library.New(libCfg)
		if err != nil {
			return nil, fmt.Errorf("deployment: library %d: %w", l, err)
		}
		d.libs = append(d.libs, lb)
	}
	return d, nil
}

// setRotation hashes a set index to a stable rotation offset.
func setRotation(set, seed uint64) int {
	x := set*0x9e3779b97f4a7c15 + seed + 0x1234
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % (1 << 30))
}

// Libraries reports the fleet size.
func (d *Deployment) Libraries() int { return len(d.libs) }

// LibraryOf reports which library holds a global platter.
func (d *Deployment) LibraryOf(p media.PlatterID) int {
	return d.directory[p].lib
}

// SetMembers returns the global platter IDs of p's set.
func (d *Deployment) SetMembers(p media.PlatterID) []media.PlatterID {
	return d.members[d.setOf[int(p)]]
}

// MarkUnavailable fails a specific global platter.
func (d *Deployment) MarkUnavailable(p media.PlatterID) {
	d.unavailable[p] = true
}

// FailLibrary takes an entire library offline: every platter it holds
// becomes unavailable (reads recover through the other libraries).
func (d *Deployment) FailLibrary(lib int) int {
	n := 0
	for g, loc := range d.directory {
		if loc.lib == lib {
			d.unavailable[media.PlatterID(g)] = true
			n++
		}
	}
	return n
}

// Submit queues a request against a global platter; unavailable
// platters fan out into SetInfo recovery reads across the fleet.
func (d *Deployment) Submit(req *controller.Request) {
	if !d.unavailable[req.Platter] {
		d.route(req, req.Platter, req.Done, true)
		return
	}
	// Cross-library recovery: matching track from SetInfo available
	// members — spread across libraries by construction.
	var avail []media.PlatterID
	for _, m := range d.SetMembers(req.Platter) {
		if m != req.Platter && !d.unavailable[m] {
			avail = append(avail, m)
		}
	}
	if len(avail) < d.cfg.SetInfo {
		d.Unrecoverable++
		return
	}
	avail = avail[:d.cfg.SetInfo]
	remaining := len(avail)
	arrival := req.Arrival
	for _, m := range avail {
		d.nextID++
		ir := &controller.Request{
			ID: d.nextID, StartTrack: req.StartTrack, TrackCount: req.TrackCount,
			Bytes: req.Bytes, Arrival: arrival, Internal: true,
		}
		d.InternalReads++
		done := req.Done
		d.route(ir, m, func(t float64) {
			remaining--
			if remaining == 0 {
				d.complete.Add(t - arrival)
				if done != nil {
					done(t)
				}
			}
		}, false)
	}
}

// route rewrites a request to library-local platter coordinates and
// batches it for that library's run.
func (d *Deployment) route(req *controller.Request, global media.PlatterID, done func(float64), record bool) {
	loc := d.directory[global]
	local := *req
	local.Platter = loc.local
	arrival := req.Arrival
	local.Done = func(t float64) {
		if record {
			d.complete.Add(t - arrival)
		}
		if done != nil {
			done(t)
		}
	}
	if record {
		// Avoid double-recording: library metrics also track
		// completions, but the deployment sample is authoritative.
		local.Internal = true
	}
	d.batches[loc.lib] = append(d.batches[loc.lib], &local)
	d.loads[loc.lib] += req.Bytes
}

// Run executes every library's batch. Libraries share no resources,
// so running them sequentially on independent clocks is equivalent to
// a shared-clock co-simulation.
func (d *Deployment) Run(horizon float64) {
	for l, lb := range d.libs {
		lb.RunTrace(d.batches[l], horizon)
		d.batches[l] = nil
	}
}

// Completions returns the deployment-level completion sample.
func (d *Deployment) Completions() *stats.Sample { return d.complete }

// LibraryLoads reports routed bytes per library: the §6 load-balancing
// signal ("spreading them across libraries leads to better
// load-balancing and higher utilization of libraries at read-time").
func (d *Deployment) LibraryLoads() []int64 {
	out := make([]int64, len(d.loads))
	copy(out, d.loads)
	return out
}

// MaxSetMembersPerLibrary reports the worst-case concentration of any
// single set in one library — the §6 spreading invariant.
func (d *Deployment) MaxSetMembersPerLibrary() int {
	worst := 0
	for _, set := range d.members {
		perLib := make(map[int]int)
		for _, g := range set {
			perLib[d.directory[g].lib]++
		}
		for _, c := range perLib {
			if c > worst {
				worst = c
			}
		}
	}
	return worst
}
