package deployment

import (
	"testing"

	"silica/internal/controller"
	"silica/internal/library"
	"silica/internal/media"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.TotalPlatters = 1900 // 100 sets of 19
	cfg.Library.Platters = 0
	cfg.Seed = 5
	return cfg
}

func TestConstructionSpreadsSets(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With 3 libraries and 19-member sets, no library may hold more
	// than ceil(19/3) = 7 members of one set.
	if worst := d.MaxSetMembersPerLibrary(); worst > 7 {
		t.Fatalf("worst set concentration = %d, want <= 7", worst)
	}
	// Many libraries: at most one member each.
	cfg := testConfig()
	cfg.Libraries = 19
	cfg.Library.Platters = 0
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if worst := d2.MaxSetMembersPerLibrary(); worst != 1 {
		t.Fatalf("19 libraries should hold one member each, got %d", worst)
	}
}

func TestDirectoryConsistency(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every set has exactly 19 members and contains its own platter.
	for g := 0; g < 1900; g++ {
		p := media.PlatterID(g)
		members := d.SetMembers(p)
		if len(members) != 19 {
			t.Fatalf("platter %d set size = %d", g, len(members))
		}
		found := false
		for _, m := range members {
			if m == p {
				found = true
			}
		}
		if !found {
			t.Fatalf("platter %d missing from its own set", g)
		}
		if lib := d.LibraryOf(p); lib < 0 || lib >= d.Libraries() {
			t.Fatalf("platter %d routed to library %d", g, lib)
		}
	}
}

func mkReq(d *Deployment, id int, p media.PlatterID, arrival float64) *controller.Request {
	return &controller.Request{
		ID: controller.RequestID(1000000 + id), Platter: p,
		StartTrack: 0, TrackCount: 1, Bytes: 10e6, Arrival: arrival,
	}
}

func TestRoutingAndCompletion(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		d.Submit(mkReq(d, i, media.PlatterID(i*12%1900), float64(i)))
	}
	d.Run(0)
	if got := d.Completions().N(); got != 150 {
		t.Fatalf("completions = %d, want 150", got)
	}
	// All three libraries should have seen load.
	for l, load := range d.LibraryLoads() {
		if load == 0 {
			t.Fatalf("library %d received no load", l)
		}
	}
}

func TestCrossLibraryRecovery(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	target := media.PlatterID(0)
	d.MarkUnavailable(target)
	done := false
	req := mkReq(d, 1, target, 0)
	req.Done = func(float64) { done = true }
	d.Submit(req)
	d.Run(0)
	if !done {
		t.Fatal("recovery read never completed")
	}
	if d.InternalReads != 16 {
		t.Fatalf("internal reads = %d, want 16", d.InternalReads)
	}
	if d.Completions().N() != 1 {
		t.Fatalf("completions = %d, want 1", d.Completions().N())
	}
	// The 16 member reads must span multiple libraries (the §6
	// load-balancing benefit).
	libsHit := map[int]bool{}
	for _, m := range d.SetMembers(target) {
		if m != target {
			libsHit[d.LibraryOf(m)] = true
		}
	}
	if len(libsHit) < 2 {
		t.Fatal("set members should span libraries")
	}
}

func TestWholeLibraryFailure(t *testing.T) {
	// Surviving a whole-library failure needs per-library set
	// concentration <= R = 3, i.e. at least ceil(19/3) = 7 libraries.
	cfg := testConfig()
	cfg.Libraries = 7
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failed := d.FailLibrary(1)
	if failed == 0 {
		t.Fatal("library 1 held no platters?")
	}
	reqs := 0
	for g := 0; g < 1900 && reqs < 30; g++ {
		p := media.PlatterID(g)
		if d.LibraryOf(p) == 1 {
			d.Submit(mkReq(d, g, p, float64(reqs)))
			reqs++
		}
	}
	d.Run(0)
	completed := d.Completions().N()
	if completed+d.Unrecoverable != reqs {
		t.Fatalf("completed %d + unrecoverable %d != %d submitted",
			completed, d.Unrecoverable, reqs)
	}
	if completed != reqs {
		t.Fatalf("with 7 libraries every request should recover: %d/%d", completed, reqs)
	}
}

func TestTooFewLibrariesCannotSurviveLibraryLoss(t *testing.T) {
	// The converse: with 4 libraries a set loses up to 5 members when
	// one library fails — beyond R = 3, so recovery must fail loudly.
	cfg := testConfig()
	cfg.Libraries = 4
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.FailLibrary(0)
	reqs := 0
	for g := 0; g < 1900 && reqs < 20; g++ {
		p := media.PlatterID(g)
		if d.LibraryOf(p) == 0 {
			d.Submit(mkReq(d, g, p, float64(reqs)))
			reqs++
		}
	}
	d.Run(0)
	if d.Unrecoverable == 0 {
		t.Fatal("4-library site should lose data on whole-library failure (5 > R members gone)")
	}
}

func TestLoadBalanceUnderRecovery(t *testing.T) {
	// Uniform reads of one failed library's platters should spread
	// amplified load across the surviving libraries.
	cfg := testConfig()
	cfg.Libraries = 7
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.FailLibrary(0)
	n := 0
	for g := 0; g < 1900 && n < 40; g++ {
		p := media.PlatterID(g)
		if d.LibraryOf(p) == 0 {
			d.Submit(mkReq(d, g, p, float64(n)))
			n++
		}
	}
	loads := d.LibraryLoads()
	if loads[0] != 0 {
		t.Fatal("failed library should receive nothing")
	}
	min, max := int64(1<<62), int64(0)
	for _, l := range loads[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == 0 || max > 3*min {
		t.Fatalf("recovery load unbalanced: %v", loads)
	}
}

func TestConfigValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Libraries = 0 },
		func(c *Config) { c.TotalPlatters = 0 },
		func(c *Config) { c.SetInfo = 0 },
		func(c *Config) { c.Library.DriveThroughput = 0 },
	} {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		d, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			d.Submit(mkReq(d, i, media.PlatterID(i*37%1900), float64(i)))
		}
		d.Run(0)
		return d.Completions().Sum()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("deployment not deterministic: %v vs %v", a, b)
	}
}

// Guard against accidental interference between the deployment's
// request rewriting and library-internal recovery.
func TestNoDoubleRecovery(t *testing.T) {
	d, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.MarkUnavailable(media.PlatterID(5))
	d.Submit(mkReq(d, 1, media.PlatterID(5), 0))
	d.Run(0)
	for _, lb := range d.libs {
		if lb.Metrics().InternalReads != 0 {
			t.Fatal("library-level recovery triggered inside a deployment")
		}
		_ = lb
	}
	var _ = library.PolicySilica
}
