package media

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometryPaperScale(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// §3: sectors carry "upwards of 100 kB", tracks are the minimum
	// read unit of ~100 sectors, platters store "multiple TBs".
	if g.SectorPayloadBytes < 100_000 {
		t.Fatalf("sector payload = %d", g.SectorPayloadBytes)
	}
	if g.TrackUserBytes() != 10_000_000 {
		t.Fatalf("track user bytes = %d, want 10 MB", g.TrackUserBytes())
	}
	user := g.PlatterUserBytes()
	if user < 1_900_000_000_000 || user > 2_100_000_000_000 {
		t.Fatalf("platter user bytes = %d, want ~2 TB", user)
	}
	// Raw scan volume must exceed user volume (coding + redundancy).
	if g.PlatterRawBytes() <= user {
		t.Fatal("raw bytes should exceed user bytes")
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Geometry{
		{SectorPayloadBytes: 0, InfoSectorsPerTrack: 1, TracksPerPlatter: 1, LargeGroupInfoTracks: 1, CodingExpansion: 1.2},
		{SectorPayloadBytes: 10, InfoSectorsPerTrack: 0, TracksPerPlatter: 1, LargeGroupInfoTracks: 1, CodingExpansion: 1.2},
		{SectorPayloadBytes: 10, InfoSectorsPerTrack: 1, TracksPerPlatter: 0, LargeGroupInfoTracks: 1, CodingExpansion: 1.2},
		{SectorPayloadBytes: 10, InfoSectorsPerTrack: 1, TracksPerPlatter: 1, LargeGroupInfoTracks: 0, CodingExpansion: 1.2},
		{SectorPayloadBytes: 10, InfoSectorsPerTrack: 1, TracksPerPlatter: 1, LargeGroupInfoTracks: 1, CodingExpansion: 0.9},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("geometry %d should be invalid", i)
		}
	}
}

func TestInfoTracksAccounting(t *testing.T) {
	g := Geometry{
		SectorPayloadBytes: 10, InfoSectorsPerTrack: 2, RedundancySectorsPerTrack: 1,
		TracksPerPlatter: 25, LargeGroupInfoTracks: 10, LargeGroupRedTracks: 2,
		CodingExpansion: 1.2,
	}
	// Two full groups of 12 (20 info) plus 1 remaining track. The tail
	// group needs its 2 redundancy tracks before it can store info, so
	// a single leftover track holds nothing.
	if got := g.InfoTracksPerPlatter(); got != 20 {
		t.Fatalf("info tracks = %d, want 20", got)
	}
	// An 11-track tail holds 2 redundancy tracks + 9 info tracks.
	g.TracksPerPlatter = 35 // 2 groups (24, 20 info) + 11 remainder -> 20 + 9
	if got := g.InfoTracksPerPlatter(); got != 29 {
		t.Fatalf("info tracks = %d, want 29", got)
	}
	// Tail redundancy stays inside the platter: group 2 starts at track
	// 24, its 9 info tracks end at 32, red tracks land on 33 and 34.
	if got := g.LargeGroupRedTrack(2, 1); got != 34 {
		t.Fatalf("tail red track = %d, want 34", got)
	}
	if phys := g.InfoTrackPhysical(g.InfoTracksPerPlatter() - 1); phys >= g.LargeGroupRedTrack(2, 0) {
		t.Fatalf("last info track %d overlaps tail redundancy %d", phys, g.LargeGroupRedTrack(2, 0))
	}
}

func TestSerpentineRoundTrip(t *testing.T) {
	g := TinyGeometry()
	err := quick.Check(func(raw uint16) bool {
		pos := int(raw) % (g.TracksPerPlatter * g.SectorsPerTrack())
		return g.SerpentinePos(g.SectorAtSerpentine(pos)) == pos
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSerpentineAdjacency(t *testing.T) {
	// The defining property: consecutive serpentine positions never
	// jump within a track and cross track boundaries at the matching
	// edge, so adjacent tracks read with no extra seek.
	g := TinyGeometry()
	per := g.SectorsPerTrack()
	last := g.SectorAtSerpentine(0)
	for pos := 1; pos < g.TracksPerPlatter*per; pos++ {
		cur := g.SectorAtSerpentine(pos)
		if cur.Track == last.Track {
			if cur.Sector != last.Sector+1 && cur.Sector != last.Sector-1 {
				t.Fatalf("pos %d: sector jump %+v -> %+v", pos, last, cur)
			}
		} else {
			if cur.Track != last.Track+1 {
				t.Fatalf("pos %d: track jump %+v -> %+v", pos, last, cur)
			}
			if cur.Sector != last.Sector {
				t.Fatalf("pos %d: boundary crossing moved sectors %+v -> %+v", pos, last, cur)
			}
		}
		last = cur
	}
}

func TestPlatterLifecycleHappyPath(t *testing.T) {
	p := NewPlatter(1, TinyGeometry())
	steps := []PlatterState{Writing, Written, Verifying, Stored, Recycled}
	for _, s := range steps {
		if err := p.Transition(s); err != nil {
			t.Fatal(err)
		}
	}
	if p.State() != Recycled {
		t.Fatalf("state = %v", p.State())
	}
}

func TestPlatterIllegalTransitions(t *testing.T) {
	cases := []struct {
		path []PlatterState
		next PlatterState
	}{
		{nil, Written},                       // can't skip writing
		{nil, Stored},                        // can't skip everything
		{[]PlatterState{Writing}, Blank},     // WORM: no path back to blank
		{[]PlatterState{Writing}, Verifying}, // must eject first
		{[]PlatterState{Writing, Written, Verifying, Stored}, Writing}, // air gap
		{[]PlatterState{Writing, Written, Verifying, Stored, Recycled}, Writing},
	}
	for i, c := range cases {
		p := NewPlatter(PlatterID(i), TinyGeometry())
		for _, s := range c.path {
			if err := p.Transition(s); err != nil {
				t.Fatalf("case %d: setup transition to %v failed: %v", i, s, err)
			}
		}
		if err := p.Transition(c.next); err == nil {
			t.Fatalf("case %d: illegal transition to %v allowed from %v", i, c.next, p.State())
		}
	}
}

// TestAirGapInvariant verifies the paper's air-gap-by-design property:
// from every reachable post-write state, the platter can never enter a
// write drive again.
func TestAirGapInvariant(t *testing.T) {
	// Exhaustively walk the transition graph from Blank.
	type node struct {
		state   PlatterState
		written bool
	}
	seen := map[PlatterState]bool{}
	queue := []node{{Blank, false}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n.state] {
			continue
		}
		seen[n.state] = true
		written := n.written || n.state == Writing
		p := &Platter{state: n.state}
		if written && n.state != Blank && p.CanEnterWriteDrive() {
			t.Fatalf("air gap violated: state %v claims write-drive access", n.state)
		}
		for _, next := range legalTransitions[n.state] {
			queue = append(queue, node{next, written})
		}
	}
	if !seen[Recycled] || !seen[Faulted] {
		t.Fatal("transition graph should reach recycled and faulted")
	}
}

func TestWORMSectorWrites(t *testing.T) {
	p := NewPlatter(1, TinyGeometry())
	id := SectorID{Track: 0, Sector: 0}
	if err := p.WriteSector(id, []uint8{1, 2}); err == nil {
		t.Fatal("write in blank state allowed")
	}
	if err := p.Transition(Writing); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSector(id, []uint8{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSector(id, []uint8{3}); err == nil {
		t.Fatal("overwrite allowed on WORM media")
	}
	if err := p.WriteSector(SectorID{Track: 999, Sector: 0}, nil); err == nil {
		t.Fatal("out-of-range sector accepted")
	}
	got, ok := p.ReadSector(id)
	if !ok || got[0] != 1 || got[1] != 2 {
		t.Fatalf("read back %v, %v", got, ok)
	}
	// Mutating the returned slice must not affect the media.
	got[0] = 99
	again, _ := p.ReadSector(id)
	if again[0] != 1 {
		t.Fatal("ReadSector aliases internal storage")
	}
	if _, ok := p.ReadSector(SectorID{Track: 1, Sector: 1}); ok {
		t.Fatal("unwritten sector readable")
	}
	if p.WrittenSectors() != 1 {
		t.Fatalf("written sectors = %d", p.WrittenSectors())
	}
}

func TestStateString(t *testing.T) {
	if Blank.String() != "blank" || Recycled.String() != "recycled" {
		t.Fatal("state names wrong")
	}
	if PlatterState(42).String() != "state(42)" {
		t.Fatal("unknown state should format numerically")
	}
}
