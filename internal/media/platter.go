package media

import "fmt"

// PlatterID identifies a platter within a deployment.
type PlatterID int64

// PlatterState is the WORM lifecycle of a platter (§3, §4). The legal
// transitions encode two paper invariants: glass is write-once (no path
// from any written state back to Blank or Writing), and the library is
// air-gap-by-design (no written platter may re-enter a write drive —
// see CanEnterWriteDrive).
type PlatterState int

const (
	// Blank platters live in the write drive's supply, which shuttles
	// cannot reach.
	Blank PlatterState = iota
	// Writing: mounted in the write drive, voxels being created.
	Writing
	// Written: ejected from the write drive, awaiting verification.
	Written
	// Verifying: mounted in a read drive's verification slot.
	Verifying
	// Stored: verified and placed in its home storage slot.
	Stored
	// Faulted: verification found unrecoverable damage; contents remain
	// in staging and the platter awaits recycling.
	Faulted
	// Recycled: melted down as blank feedstock; terminal.
	Recycled
)

var stateNames = map[PlatterState]string{
	Blank: "blank", Writing: "writing", Written: "written",
	Verifying: "verifying", Stored: "stored", Faulted: "faulted",
	Recycled: "recycled",
}

func (s PlatterState) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

var legalTransitions = map[PlatterState][]PlatterState{
	Blank:     {Writing},
	Writing:   {Written, Faulted},
	Written:   {Verifying},
	Verifying: {Stored, Faulted},
	Stored:    {Recycled}, // only after crypto-shredding frees all live data
	Faulted:   {Recycled},
	Recycled:  {},
}

// Platter is the unit of glass media. In the discrete-event simulator
// platters carry no payload; in real-codec mode WriteSector/ReadSector
// hold the modulated symbols of each written sector.
type Platter struct {
	ID    PlatterID
	Geom  Geometry
	state PlatterState

	// symbols holds modulated voxel symbols per written sector; nil
	// until the first write. Only used by the real-codec path.
	symbols map[SectorID][]uint8
}

// NewPlatter returns a blank platter.
func NewPlatter(id PlatterID, geom Geometry) *Platter {
	return &Platter{ID: id, Geom: geom, state: Blank}
}

// State reports the current lifecycle state.
func (p *Platter) State() PlatterState { return p.state }

// Transition moves the platter to next, or returns an error naming the
// violated invariant.
func (p *Platter) Transition(next PlatterState) error {
	for _, ok := range legalTransitions[p.state] {
		if ok == next {
			p.state = next
			return nil
		}
	}
	return fmt.Errorf("media: platter %d: illegal transition %v -> %v", p.ID, p.state, next)
}

// CanEnterWriteDrive enforces the air gap: only blank platters (which
// arrive via the supply path, not via shuttles) may be written.
func (p *Platter) CanEnterWriteDrive() bool { return p.state == Blank }

// WriteSector records the modulated symbols of one sector. Glass is
// WORM: writing an already-written sector is an error, as is writing
// outside the Writing state.
func (p *Platter) WriteSector(id SectorID, symbols []uint8) error {
	if p.state != Writing {
		return fmt.Errorf("media: platter %d: write in state %v", p.ID, p.state)
	}
	if id.Track < 0 || id.Track >= p.Geom.TracksPerPlatter ||
		id.Sector < 0 || id.Sector >= p.Geom.SectorsPerTrack() {
		return fmt.Errorf("media: platter %d: sector %+v out of range", p.ID, id)
	}
	if p.symbols == nil {
		p.symbols = make(map[SectorID][]uint8)
	}
	if _, written := p.symbols[id]; written {
		return fmt.Errorf("media: platter %d: sector %+v already written (WORM)", p.ID, id)
	}
	cp := make([]uint8, len(symbols))
	copy(cp, symbols)
	p.symbols[id] = cp
	return nil
}

// ReadSector returns the stored symbols of a sector, or ok=false if the
// sector was never written. Reading is legal in any post-write state —
// the read optics physically cannot modify voxels.
func (p *Platter) ReadSector(id SectorID) ([]uint8, bool) {
	s, ok := p.symbols[id]
	if !ok {
		return nil, false
	}
	cp := make([]uint8, len(s))
	copy(cp, s)
	return cp, true
}

// ReadSectorInto copies a sector's symbols into dst's storage (growing
// it only when too small) and returns the filled slice: the pooled-
// buffer variant of ReadSector for verify/scrub loops that read every
// sector of a platter.
func (p *Platter) ReadSectorInto(id SectorID, dst []uint8) ([]uint8, bool) {
	s, ok := p.symbols[id]
	if !ok {
		return nil, false
	}
	out := dst[:0]
	if cap(out) >= len(s) {
		out = out[:len(s)]
	} else {
		out = make([]uint8, len(s))
	}
	copy(out, s)
	return out, true
}

// WrittenSectors reports how many sectors hold data.
func (p *Platter) WrittenSectors() int { return len(p.symbols) }

// SectorContents copies every written sector's symbols, the media
// payload of a persistence blob. Legal in any post-write state.
func (p *Platter) SectorContents() map[SectorID][]uint8 {
	out := make(map[SectorID][]uint8, len(p.symbols))
	for id, s := range p.symbols {
		cp := make([]uint8, len(s))
		copy(cp, s)
		out[id] = cp
	}
	return out
}

// RestoreStored rebuilds a platter directly in the Stored state from
// saved sector symbols — the crash-recovery path. The WORM lifecycle
// is not re-walked: the platter was verified before its publish record
// was logged, and glass state survives a front-end restart by nature.
func RestoreStored(id PlatterID, geom Geometry, sectors map[SectorID][]uint8) *Platter {
	p := &Platter{ID: id, Geom: geom, state: Stored}
	if len(sectors) > 0 {
		p.symbols = make(map[SectorID][]uint8, len(sectors))
		for sid, s := range sectors {
			cp := make([]uint8, len(s))
			copy(cp, s)
			p.symbols[sid] = cp
		}
	}
	return p
}
