// Package media models the quartz-glass platter (§3): its geometry
// (voxels → sectors → tracks → platter), the serpentine sector order
// the read drive follows, capacity accounting including coding
// overheads, and the WORM platter lifecycle with the air-gap-by-design
// invariant (a written platter can never re-enter a write drive).
package media

import "fmt"

// Geometry fixes the layout of one platter model. The defaults follow
// the paper: sectors carry ~100 kB of user data, a track stacks ~100
// information sectors (plus in-track redundancy) through the Z layers
// and is the minimum read unit, and a platter stores multiple TB.
type Geometry struct {
	// SectorPayloadBytes is user payload per information sector.
	SectorPayloadBytes int
	// InfoSectorsPerTrack (I_t) and RedundancySectorsPerTrack (R_t)
	// define the within-track network group.
	InfoSectorsPerTrack       int
	RedundancySectorsPerTrack int
	// TracksPerPlatter counts all tracks, including large-group
	// redundancy tracks.
	TracksPerPlatter int
	// LargeGroupInfoTracks / LargeGroupRedTracks define the large-group
	// level: for every LargeGroupInfoTracks information tracks the
	// platter carries LargeGroupRedTracks redundancy tracks.
	LargeGroupInfoTracks int
	LargeGroupRedTracks  int
	// CodingExpansion is raw-coded-bits over payload-bits within a
	// sector (LDPC + framing), used to convert user bytes to the raw
	// bytes a drive must scan. 1.25 ≈ a rate-0.8 sector code.
	CodingExpansion float64
}

// DefaultGeometry returns the paper-scale platter: 100 kB sectors,
// 100+8 sectors per track, 2 TB of user data per platter.
func DefaultGeometry() Geometry {
	g := Geometry{
		SectorPayloadBytes:        100_000,
		InfoSectorsPerTrack:       100,
		RedundancySectorsPerTrack: 8,
		LargeGroupInfoTracks:      100,
		LargeGroupRedTracks:       2,
		CodingExpansion:           1.25,
	}
	// Choose the track count so user capacity lands at ~2 TB.
	g.TracksPerPlatter = int(2e12 / float64(g.TrackUserBytes()))
	return g
}

// TinyGeometry returns a platter small enough to push real bytes
// through the full codec in tests and examples.
func TinyGeometry() Geometry {
	return Geometry{
		SectorPayloadBytes:        1000,
		InfoSectorsPerTrack:       8,
		RedundancySectorsPerTrack: 2,
		TracksPerPlatter:          32,
		LargeGroupInfoTracks:      8,
		LargeGroupRedTracks:       1,
		CodingExpansion:           1.25,
	}
}

// Validate reports whether the geometry is self-consistent.
func (g Geometry) Validate() error {
	switch {
	case g.SectorPayloadBytes <= 0:
		return fmt.Errorf("media: sector payload must be positive")
	case g.InfoSectorsPerTrack <= 0 || g.RedundancySectorsPerTrack < 0:
		return fmt.Errorf("media: bad track shape %d+%d", g.InfoSectorsPerTrack, g.RedundancySectorsPerTrack)
	case g.TracksPerPlatter <= 0:
		return fmt.Errorf("media: platter needs tracks")
	case g.LargeGroupInfoTracks <= 0 || g.LargeGroupRedTracks < 0:
		return fmt.Errorf("media: bad large group %d+%d", g.LargeGroupInfoTracks, g.LargeGroupRedTracks)
	case g.CodingExpansion < 1:
		return fmt.Errorf("media: coding expansion %v < 1", g.CodingExpansion)
	}
	return nil
}

// SectorsPerTrack reports I_t + R_t.
func (g Geometry) SectorsPerTrack() int {
	return g.InfoSectorsPerTrack + g.RedundancySectorsPerTrack
}

// TrackUserBytes is the user payload capacity of one information track.
func (g Geometry) TrackUserBytes() int64 {
	return int64(g.SectorPayloadBytes) * int64(g.InfoSectorsPerTrack)
}

// TrackRawBytes is what the read drive must scan to read one track:
// every sector (information + redundancy) at coded size.
func (g Geometry) TrackRawBytes() int64 {
	raw := float64(g.SectorPayloadBytes) * g.CodingExpansion * float64(g.SectorsPerTrack())
	return int64(raw)
}

// InfoTracksPerPlatter is the number of tracks that hold user data
// (excludes large-group redundancy tracks).
func (g Geometry) InfoTracksPerPlatter() int {
	group := g.LargeGroupInfoTracks + g.LargeGroupRedTracks
	full := g.TracksPerPlatter / group
	rem := g.TracksPerPlatter % group
	info := full * g.LargeGroupInfoTracks
	// A partial tail group must still hold its redundancy tracks; only
	// the tracks left past them store user data. Counting them all as
	// info would let a full platter's tail-group redundancy land past
	// the platter edge.
	rem -= g.LargeGroupRedTracks
	if rem < 0 {
		rem = 0
	}
	if rem > g.LargeGroupInfoTracks {
		rem = g.LargeGroupInfoTracks
	}
	return info + rem
}

// PlatterUserBytes is the platter's user data capacity.
func (g Geometry) PlatterUserBytes() int64 {
	return int64(g.InfoTracksPerPlatter()) * g.TrackUserBytes()
}

// PlatterRawBytes is the raw scan volume to verify a whole platter.
func (g Geometry) PlatterRawBytes() int64 {
	return int64(g.TracksPerPlatter) * g.TrackRawBytes()
}

// InfoTrackPhysical maps a logical information-track index to its
// physical track: information tracks and large-group redundancy
// tracks interleave in groups of LargeGroupInfoTracks +
// LargeGroupRedTracks.
func (g Geometry) InfoTrackPhysical(infoTrack int) int {
	group := infoTrack / g.LargeGroupInfoTracks
	offset := infoTrack % g.LargeGroupInfoTracks
	return group*(g.LargeGroupInfoTracks+g.LargeGroupRedTracks) + offset
}

// LargeGroupRedTrack returns the physical track of redundancy track j
// (0-based) of large group `group`. In the platter's partial tail
// group the redundancy tracks sit directly after its (shortened) info
// tracks, so they always fit inside the platter.
func (g Geometry) LargeGroupRedTrack(group, j int) int {
	start := group * (g.LargeGroupInfoTracks + g.LargeGroupRedTracks)
	info := g.LargeGroupInfoTracks
	if left := g.TracksPerPlatter - start; left < info+g.LargeGroupRedTracks {
		info = left - g.LargeGroupRedTracks
		if info < 0 {
			info = 0
		}
	}
	return start + info + j
}

// SectorID addresses one sector on a platter.
type SectorID struct {
	Track  int
	Sector int // index within the track, 0..SectorsPerTrack-1
}

// SerpentinePos maps a sector to its position in the serpentine scan
// order (§6): within even tracks sectors run forward, within odd tracks
// backward, so adjacent tracks read without an extra seek.
func (g Geometry) SerpentinePos(id SectorID) int {
	per := g.SectorsPerTrack()
	base := id.Track * per
	if id.Track%2 == 0 {
		return base + id.Sector
	}
	return base + (per - 1 - id.Sector)
}

// SectorAtSerpentine is the inverse of SerpentinePos.
func (g Geometry) SectorAtSerpentine(pos int) SectorID {
	per := g.SectorsPerTrack()
	track := pos / per
	off := pos % per
	if track%2 == 1 {
		off = per - 1 - off
	}
	return SectorID{Track: track, Sector: off}
}
