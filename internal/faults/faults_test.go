package faults

import (
	"errors"
	"testing"
	"time"
)

func TestParseRuleRoundTrip(t *testing.T) {
	cases := []string{
		"op=media.write,mode=error,every=7,count=5",
		"op=staging.reserve,mode=error,err=capacity,prob=0.2",
		"op=media.read,platter=3,mode=latency,latency=5ms",
		"op=media.write,track=0,sector=1,mode=partial",
		"op=flush.burn,platter=2,mode=error,after=3",
	}
	for _, s := range cases {
		r, err := ParseRule(s)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", s, err)
		}
		if got := r.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		// The rendered form must re-parse to the same rule.
		r2, err := ParseRule(r.String())
		if err != nil || r2 != r {
			t.Errorf("re-parse %q: %+v vs %+v (err %v)", r.String(), r2, r, err)
		}
	}
}

func TestParseRuleRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",                                    // no op
		"op=media.write",                      // no mode
		"op=media.write,mode=vaporize",        // unknown mode
		"op=media.write,mode=latency",         // latency mode without latency
		"op=media.write,mode=error,prob=1.5",  // prob out of range
		"op=media.write,mode=error,every=-1",  // negative trigger
		"op=media.write,mode=error,bogus=1",   // unknown key
		"op=media.write,mode=error,every=two", // non-numeric
		"notkeyvalue",
	} {
		if _, err := ParseRule(s); err == nil {
			t.Errorf("ParseRule(%q) accepted garbage", s)
		}
	}
}

func TestEveryAfterCountTriggers(t *testing.T) {
	inj := New(1)
	if err := inj.ArmString("op=media.write,mode=error,after=2,every=3,count=2"); err != nil {
		t.Fatal(err)
	}
	// Matches 1..2 are in the skip window; then every 3rd of the
	// remaining ordinals fires (ordinals 3,6 -> matches 5, 8), capped
	// at 2 fires.
	var fired []int
	for m := 1; m <= 20; m++ {
		if err := inj.Check(OpMediaWrite, -1, -1, -1); err != nil {
			fired = append(fired, m)
		}
	}
	want := []int{5, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	snap := inj.Snapshot()
	if len(snap) != 1 || snap[0].Fires != 2 || snap[0].Matches != 20 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if inj.Total() != 2 {
		t.Fatalf("total = %d, want 2", inj.Total())
	}
}

func TestSelectorsNarrowMatches(t *testing.T) {
	inj := New(1)
	if err := inj.ArmString("op=media.read,platter=3,track=1,mode=error"); err != nil {
		t.Fatal(err)
	}
	if err := inj.Check(OpMediaRead, 2, 1, 0); err != nil {
		t.Fatalf("wrong platter fired: %v", err)
	}
	if err := inj.Check(OpMediaRead, 3, 0, 0); err != nil {
		t.Fatalf("wrong track fired: %v", err)
	}
	if err := inj.Check(OpMediaWrite, 3, 1, 0); err != nil {
		t.Fatalf("wrong op fired: %v", err)
	}
	if err := inj.Check(OpMediaRead, 3, 1, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching op did not fire: %v", err)
	}
}

func TestSeededProbDeterminism(t *testing.T) {
	run := func(seed uint64) []int {
		inj := New(seed)
		if err := inj.ArmString("op=media.write,mode=error,prob=0.3"); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for m := 0; m < 200; m++ {
			if inj.Check(OpMediaWrite, -1, -1, -1) != nil {
				fired = append(fired, m)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob=0.3 fired %d/200 times", len(a))
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fire sequences")
	}
}

func TestErrorClassMapping(t *testing.T) {
	sentinel := errors.New("capacity exhausted")
	inj := New(1)
	inj.MapError("capacity", sentinel)
	if err := inj.ArmString("op=staging.reserve,mode=error,err=capacity"); err != nil {
		t.Fatal(err)
	}
	err := inj.Check(OpStagingReserve, -1, -1, -1)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("want mapped class error, got %v", err)
	}
	// Unmapped class still injects, just without the typed wrap.
	inj2 := New(1)
	if err := inj2.ArmString("op=staging.reserve,mode=error,err=unknown-class"); err != nil {
		t.Fatal(err)
	}
	if err := inj2.Check(OpStagingReserve, -1, -1, -1); !errors.Is(err, ErrInjected) {
		t.Fatalf("unmapped class did not inject: %v", err)
	}
}

func TestPartialCorruptionDeterministic(t *testing.T) {
	mk := func() *Injector {
		inj := New(7)
		if err := inj.ArmString("op=media.write,mode=partial"); err != nil {
			t.Fatal(err)
		}
		return inj
	}
	orig := make([]byte, 4096)
	for i := range orig {
		orig[i] = byte(i)
	}
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	if err := mk().CheckData(OpMediaWrite, 1, 0, 0, a); err != nil {
		t.Fatalf("partial mode returned error: %v", err)
	}
	if err := mk().CheckData(OpMediaWrite, 1, 0, 0, b); err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := range orig {
		if a[i] != orig[i] {
			diffs++
		}
		if a[i] != b[i] {
			t.Fatalf("same seed corrupted differently at byte %d", i)
		}
	}
	if diffs == 0 {
		t.Fatal("partial fault corrupted nothing")
	}
	if diffs > len(orig)/8 {
		t.Fatalf("partial fault clobbered %d/%d bytes; should be a sprinkle", diffs, len(orig))
	}
}

func TestLatencyMode(t *testing.T) {
	inj := New(1)
	if err := inj.ArmString("op=media.read,mode=latency,latency=30ms"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := inj.Check(OpMediaRead, -1, -1, -1); err != nil {
		t.Fatalf("latency mode returned error: %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("latency rule slept only %s", d)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if err := inj.Check(OpMediaWrite, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := inj.CheckData(OpMediaRead, 1, 2, 3, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if inj.Total() != 0 || inj.Snapshot() != nil {
		t.Fatal("nil injector reported state")
	}
	inj.MapError("x", errors.New("x"))
	inj.Clear()
	inj.Instrument(nil)
	if err := inj.Arm(Rule{Op: OpMediaRead, Mode: ModeError}); err == nil {
		t.Fatal("nil injector accepted a rule")
	}
}

func TestClearResetsRules(t *testing.T) {
	inj := New(1)
	if err := inj.ArmString("op=media.write,mode=error"); err != nil {
		t.Fatal(err)
	}
	if inj.Check(OpMediaWrite, -1, -1, -1) == nil {
		t.Fatal("armed rule did not fire")
	}
	inj.Clear()
	if err := inj.Check(OpMediaWrite, -1, -1, -1); err != nil {
		t.Fatalf("cleared injector still fired: %v", err)
	}
	if len(inj.Snapshot()) != 0 {
		t.Fatal("cleared injector still lists rules")
	}
}
