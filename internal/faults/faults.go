// Package faults is a deterministic, seedable fault-injection layer
// for the serving stack: the mechanism behind "as many scenarios as
// you can imagine". A Rule names an injection point (an op such as
// media.write, optionally narrowed to a platter/track/sector) and a
// failure mode — a typed error, added latency, or partial corruption
// of the bytes in flight. Rules are armed at daemon start (silicad
// -fault) or at runtime (POST /v1/faults) and evaluated by an
// Injector embedded in the service's hot paths.
//
// Determinism: counter-based triggers (every/after/count) fire on
// exact match ordinals, independent of scheduling; probabilistic
// triggers draw from a single seeded RNG, so a serial workload
// replays bit-identically for a given seed. A nil *Injector is valid
// and injects nothing, so the data path pays one pointer check when
// fault injection is disabled.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"silica/internal/obs"
)

// ErrInjected is the root of every injected error; call sites and
// tests detect injected failures with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faults: injected failure")

// Injection-point ops wired into the stack. An op names a pipeline
// stage, not a function: every path that performs the operation
// checks the same op, so a rule written against the op catches the
// foreground read path, the scrubber, and the rebuilder alike.
const (
	OpMediaRead      = "media.read"      // sector read before decode (reads, recovery, rebuild)
	OpMediaWrite     = "media.write"     // sector write during burn (flush, set close, rebuild)
	OpStagingReserve = "staging.reserve" // staging capacity reservation in Put
	OpFlushBatch     = "flush.batch"     // start of one flush round
	OpFlushBurn      = "flush.burn"      // start of one platter's burn
	OpFlushVerify    = "flush.verify"    // start of one platter's verification
	OpFlushPublish   = "flush.publish"   // start of one batch's publish phase
	OpPublishPlatter = "publish.platter" // publish of one verified platter (kill points land mid-publish)
	OpPersistAppend  = "persist.append"  // one WAL record append, pre-ack (bytes = the framed record)
	OpPersistSync    = "persist.sync"    // one WAL fsync batch
	OpClusterPlace   = "cluster.place"   // router directory placement record, post-mutate pre-ack
	OpClusterDelete  = "cluster.delete"  // router delete intent/completion record, pre-ack
	OpClusterMember  = "cluster.member"  // router membership record (add/kill/rebuild/drain)
)

// Failure modes.
const (
	ModeError   = "error"   // return a typed error from the op
	ModeLatency = "latency" // sleep before the op proceeds
	ModePartial = "partial" // corrupt the op's in-flight bytes
	// ModeKill invokes the injector's kill hook: silicad installs a hard
	// os.Exit so the process dies at the op — a deterministic kill -9 —
	// while in-process crash tests install a WAL freeze instead. If the
	// hook returns (or none is installed), the op fails with an injected
	// error so the caller unwinds without acknowledging, which is the
	// closest in-process approximation of dying mid-call.
	ModeKill = "kill"
)

// Rule is one armed fault. Zero selector fields (Platter/Track/
// Sector = -1) match anything. Triggers compose: a rule fires on a
// matching op when the match ordinal is past After, on the Every'th
// match (1 = every match), under Prob (1 or 0 = always), and at most
// Count times (0 = unlimited).
type Rule struct {
	Op      string  `json:"op"`
	Platter int64   `json:"platter"` // -1 = any
	Track   int     `json:"track"`   // -1 = any
	Sector  int     `json:"sector"`  // -1 = any
	Mode    string  `json:"mode"`
	Err     string  `json:"err,omitempty"` // error class; "" = generic injected
	Latency string  `json:"latency,omitempty"`
	Prob    float64 `json:"prob,omitempty"`
	Every   int     `json:"every,omitempty"`
	After   int     `json:"after,omitempty"`
	Count   int     `json:"count,omitempty"`
}

// latencyDur parses the rule's Latency field (Go duration syntax).
func (r Rule) latencyDur() (time.Duration, error) {
	if r.Latency == "" {
		return 0, nil
	}
	return time.ParseDuration(r.Latency)
}

// Validate reports whether the rule is well-formed.
func (r Rule) Validate() error {
	if r.Op == "" {
		return fmt.Errorf("faults: rule needs an op")
	}
	switch r.Mode {
	case ModeError, ModePartial, ModeKill:
	case ModeLatency:
		if d, err := r.latencyDur(); err != nil || d <= 0 {
			return fmt.Errorf("faults: latency rule needs a positive latency, got %q", r.Latency)
		}
	default:
		return fmt.Errorf("faults: unknown mode %q", r.Mode)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("faults: prob %v out of [0,1]", r.Prob)
	}
	if r.Every < 0 || r.After < 0 || r.Count < 0 {
		return fmt.Errorf("faults: negative trigger in %+v", r)
	}
	if _, err := r.latencyDur(); err != nil {
		return fmt.Errorf("faults: bad latency %q: %v", r.Latency, err)
	}
	return nil
}

// String renders the rule in the flag/endpoint grammar parsed by
// ParseRule: comma-separated key=value pairs.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "op=%s", r.Op)
	if r.Platter >= 0 {
		fmt.Fprintf(&b, ",platter=%d", r.Platter)
	}
	if r.Track >= 0 {
		fmt.Fprintf(&b, ",track=%d", r.Track)
	}
	if r.Sector >= 0 {
		fmt.Fprintf(&b, ",sector=%d", r.Sector)
	}
	fmt.Fprintf(&b, ",mode=%s", r.Mode)
	if r.Err != "" {
		fmt.Fprintf(&b, ",err=%s", r.Err)
	}
	if r.Latency != "" {
		fmt.Fprintf(&b, ",latency=%s", r.Latency)
	}
	if r.Prob > 0 {
		fmt.Fprintf(&b, ",prob=%g", r.Prob)
	}
	if r.Every > 0 {
		fmt.Fprintf(&b, ",every=%d", r.Every)
	}
	if r.After > 0 {
		fmt.Fprintf(&b, ",after=%d", r.After)
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, ",count=%d", r.Count)
	}
	return b.String()
}

// ParseRule parses the compact rule grammar used by silicad -fault
// and POST /v1/faults, e.g.
//
//	op=media.write,mode=error,every=7,count=5
//	op=staging.reserve,mode=error,err=capacity,prob=0.2
//	op=media.read,platter=3,mode=latency,latency=5ms
//	op=media.write,track=0,sector=1,mode=partial
//
// A compact kill-point form puts the mode and op first:
//
//	kill@flush.publish:after=3
//	partial@persist.append:every=5
//
// which is shorthand for op=flush.publish,mode=kill,after=3 etc. —
// the grammar used to arm crash points for recovery testing.
//
// Unset selectors default to "any" (-1).
func ParseRule(s string) (Rule, error) {
	r := Rule{Platter: -1, Track: -1, Sector: -1}
	// mode@op[:k=v,...] compact form.
	if at := strings.Index(s, "@"); at >= 0 && !strings.Contains(s[:at], "=") {
		mode, rest := s[:at], s[at+1:]
		op := rest
		var opts string
		if colon := strings.IndexAny(rest, ":,"); colon >= 0 {
			op, opts = rest[:colon], rest[colon+1:]
		}
		if mode == "" || op == "" {
			return r, fmt.Errorf("faults: bad compact rule %q (want mode@op[:k=v,...])", s)
		}
		s = "op=" + op + ",mode=" + mode
		if opts != "" {
			s += "," + opts
		}
	}
	for _, field := range strings.FieldsFunc(s, func(c rune) bool { return c == ',' || c == ' ' || c == ';' }) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return r, fmt.Errorf("faults: %q is not key=value", field)
		}
		var err error
		switch k {
		case "op":
			r.Op = v
		case "platter":
			r.Platter, err = strconv.ParseInt(v, 10, 64)
		case "track":
			r.Track, err = strconv.Atoi(v)
		case "sector":
			r.Sector, err = strconv.Atoi(v)
		case "mode":
			r.Mode = v
		case "err":
			r.Err = v
		case "latency":
			r.Latency = v
		case "prob":
			r.Prob, err = strconv.ParseFloat(v, 64)
		case "every":
			r.Every, err = strconv.Atoi(v)
		case "after":
			r.After, err = strconv.Atoi(v)
		case "count":
			r.Count, err = strconv.Atoi(v)
		default:
			return r, fmt.Errorf("faults: unknown rule key %q", k)
		}
		if err != nil {
			return r, fmt.Errorf("faults: bad %s value %q: %v", k, v, err)
		}
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// RuleStatus is a Snapshot entry: the rule plus its trigger history.
type RuleStatus struct {
	Rule    Rule  `json:"rule"`
	Matches int64 `json:"matches"` // ops that matched the selectors
	Fires   int64 `json:"fires"`   // injections actually performed
}

type armedRule struct {
	Rule
	latency time.Duration
	matches int64
	fires   int64
}

// Injector evaluates armed rules at the stack's injection points.
// All methods are safe for concurrent use and valid on a nil
// receiver (no rules, no overhead beyond the nil check).
type Injector struct {
	// armed mirrors len(rules) so the no-rules fast path — the common
	// case on every sector of every read — is one atomic load.
	armed atomic.Int32

	mu      sync.Mutex
	rules   []*armedRule
	rng     *splitmix
	seed    uint64
	total   int64
	classes map[string]error // error class name -> typed error
	killFn  func()           // ModeKill hook; see SetKill

	// injected is the obs counter mirror of total; per-op counters are
	// registered lazily as ops fire.
	reg      *obs.Registry
	injected *obs.Counter
	byOp     map[string]*obs.Counter
}

// splitmix is a tiny seeded generator (SplitMix64): enough for
// reproducible probabilistic rules without dragging in a dependency.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// New returns an empty injector whose probabilistic decisions replay
// deterministically for a given seed.
func New(seed uint64) *Injector {
	return &Injector{
		rng:     &splitmix{state: seed},
		seed:    seed,
		classes: make(map[string]error),
		byOp:    make(map[string]*obs.Counter),
	}
}

// Instrument registers the injector's counters in reg
// (silica_faults_injected_total, labeled by op).
func (i *Injector) Instrument(reg *obs.Registry) {
	if i == nil || reg == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.reg = reg
	i.injected = reg.Counter("silica_faults_injected_total",
		"Faults injected by internal/faults rules.", obs.L("op", "all"))
}

// SetKill installs the hook fired by kill-mode rules. silicad installs
// a hard os.Exit (a deterministic stand-in for kill -9 at an exact
// pipeline point); in-process crash tests install a persist-log freeze
// so everything after the kill point is provably not durable. If the
// hook returns, the checked op fails with an injected error.
func (i *Injector) SetKill(fn func()) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.killFn = fn
	i.mu.Unlock()
}

// MapError binds an error class name usable in a rule's err= field to
// a typed error, so injected failures surface through the stack's
// normal retryable signals (e.g. "capacity" -> staging.ErrCapacity).
// The embedding layer registers its own classes at construction.
func (i *Injector) MapError(class string, err error) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.classes[class] = err
	i.mu.Unlock()
}

// Arm validates and adds a rule.
func (i *Injector) Arm(r Rule) error {
	if i == nil {
		return fmt.Errorf("faults: injector disabled")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	d, _ := r.latencyDur()
	i.mu.Lock()
	i.rules = append(i.rules, &armedRule{Rule: r, latency: d})
	i.armed.Store(int32(len(i.rules)))
	i.mu.Unlock()
	return nil
}

// ArmString parses and arms one rule in the ParseRule grammar.
func (i *Injector) ArmString(s string) error {
	r, err := ParseRule(s)
	if err != nil {
		return err
	}
	return i.Arm(r)
}

// Clear disarms every rule (trigger history included).
func (i *Injector) Clear() {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.rules = nil
	i.armed.Store(0)
	i.mu.Unlock()
}

// Snapshot reports the armed rules and their trigger history.
func (i *Injector) Snapshot() []RuleStatus {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]RuleStatus, len(i.rules))
	for k, ar := range i.rules {
		out[k] = RuleStatus{Rule: ar.Rule, Matches: ar.matches, Fires: ar.fires}
	}
	return out
}

// Total reports the number of faults injected since construction.
func (i *Injector) Total() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.total
}

// Check evaluates the armed rules against one op. It sleeps for
// latency-mode rules and returns the typed error of the first
// error-mode rule that fires (always wrapping ErrInjected). Selector
// -1 on the caller side means "this op has no such coordinate".
func (i *Injector) Check(op string, platter int64, track, sector int) error {
	return i.CheckData(op, platter, track, sector, nil)
}

// CheckData is Check for ops carrying bytes: a partial-mode rule that
// fires corrupts data in place (deterministically, from the
// injector's seed and the rule's fire ordinal) instead of erroring,
// modeling torn writes and bit rot rather than clean failures.
func (i *Injector) CheckData(op string, platter int64, track, sector int, data []byte) error {
	if i == nil || i.armed.Load() == 0 {
		return nil
	}
	var sleep time.Duration
	var injErr error
	var kill func()
	i.mu.Lock()
	for _, ar := range i.rules {
		if ar.Op != op {
			continue
		}
		if ar.Platter >= 0 && ar.Platter != platter {
			continue
		}
		if ar.Track >= 0 && ar.Track != track {
			continue
		}
		if ar.Sector >= 0 && ar.Sector != sector {
			continue
		}
		ar.matches++
		if !i.shouldFire(ar) {
			continue
		}
		ar.fires++
		i.total++
		i.countFire(op)
		switch ar.Mode {
		case ModeLatency:
			sleep += ar.latency
		case ModePartial:
			if data != nil {
				i.corrupt(data, ar)
			}
		case ModeKill:
			kill = i.killFn
			if injErr == nil {
				injErr = fmt.Errorf("%w: killed at %s", ErrInjected, op)
			}
		default: // ModeError
			if injErr == nil {
				injErr = i.buildErr(ar, op, platter, track, sector)
			}
		}
	}
	i.mu.Unlock()
	if kill != nil {
		// Outside the injector lock: the hook may exit the process or
		// freeze the persistence log, both of which touch other locks.
		kill()
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return injErr
}

// shouldFire applies the rule's triggers to its current match
// ordinal; call with i.mu held.
func (i *Injector) shouldFire(ar *armedRule) bool {
	if ar.Count > 0 && ar.fires >= int64(ar.Count) {
		return false
	}
	ordinal := ar.matches - int64(ar.After) // 1-based past the skip window
	if ordinal <= 0 {
		return false
	}
	if ar.Every > 1 && ordinal%int64(ar.Every) != 0 {
		return false
	}
	if ar.Prob > 0 && ar.Prob < 1 && i.rng.float64() >= ar.Prob {
		return false
	}
	return true
}

// buildErr resolves the rule's error class; call with i.mu held.
func (i *Injector) buildErr(ar *armedRule, op string, platter int64, track, sector int) error {
	where := op
	if platter >= 0 {
		where = fmt.Sprintf("%s platter=%d", where, platter)
	}
	if track >= 0 {
		where = fmt.Sprintf("%s track=%d sector=%d", where, track, sector)
	}
	if class, ok := i.classes[ar.Err]; ok && class != nil {
		return fmt.Errorf("%w: %w at %s", ErrInjected, class, where)
	}
	return fmt.Errorf("%w: %s at %s", ErrInjected, ModeError, where)
}

// corrupt flips a deterministic sprinkle of bytes (~1 per 64, at
// least 8) so partial faults defeat the sector CRC without erasing
// the whole payload; call with i.mu held.
func (i *Injector) corrupt(data []byte, ar *armedRule) {
	if len(data) == 0 {
		return
	}
	r := splitmix{state: i.seed ^ uint64(ar.fires)*0x9e3779b97f4a7c15}
	flips := len(data) / 64
	if flips < 8 {
		flips = 8
	}
	for k := 0; k < flips; k++ {
		pos := int(r.next() % uint64(len(data)))
		data[pos] ^= byte(1 << (r.next() % 8))
	}
}

// countFire bumps the obs counters for op; call with i.mu held.
// Per-op counters are registered on first fire (registration takes
// the registry lock, which is fine off the steady-state path).
func (i *Injector) countFire(op string) {
	if i.injected != nil {
		i.injected.Inc()
	}
	if i.reg == nil {
		return
	}
	c, ok := i.byOp[op]
	if !ok {
		c = i.reg.Counter("silica_faults_injected_total",
			"Faults injected by internal/faults rules.", obs.L("op", op))
		i.byOp[op] = c
	}
	c.Inc()
}

// Ops lists the known injection-point ops (for CLI help and the
// admin endpoint's error messages).
func Ops() []string {
	ops := []string{
		OpMediaRead, OpMediaWrite, OpStagingReserve,
		OpFlushBatch, OpFlushBurn, OpFlushVerify, OpFlushPublish,
		OpPublishPlatter, OpPersistAppend, OpPersistSync,
		OpClusterPlace, OpClusterDelete, OpClusterMember,
	}
	sort.Strings(ops)
	return ops
}
