package voxel

import (
	"sync"

	"silica/internal/ldpc"
	"silica/internal/sim"
)

// SectorPipeline is the full per-sector data path: payload bytes →
// LDPC-coded bits → voxel symbols → channel → soft demap → BP decode →
// payload bytes. It is the unit the write pipeline, verification, and
// the decode stack all share.
//
// The pipeline is safe for concurrent use. Hot paths run on a
// SectorScratch — a per-worker working set recycled through an internal
// pool — so the codec engine can fan sector jobs across cores without
// per-sector allocation.
type SectorPipeline struct {
	Codec    *ldpc.SectorCodec
	Mod      *Modulation
	Ch       Channel
	Demap    *Demapper
	MaxIters int

	scratch sync.Pool // *SectorScratch
}

// SectorScratch holds the reusable buffers of one in-flight sector
// encode or decode. A scratch may be used by one goroutine at a time;
// buffers returned by WriteSectorWith are valid until the scratch's
// next use or release.
type SectorScratch struct {
	bits    []uint8 // coded bits, padded to a whole voxel count
	symbols []uint8 // modulated symbols
	points  []Point // received channel observations
	post    [][numSymbols]float64
	llrs    []float64     // demapped bit LLRs
	codec   *ldpc.Scratch // sector codec working set, held across calls
}

// NewSectorPipeline wires a sector codec to a channel model.
func NewSectorPipeline(codec *ldpc.SectorCodec, ch Channel) *SectorPipeline {
	mod := NewModulation()
	return &SectorPipeline{
		Codec:    codec,
		Mod:      mod,
		Ch:       ch,
		Demap:    NewDemapper(mod, ch),
		MaxIters: 50,
	}
}

// SymbolsPerSector reports the voxel count of one coded sector.
func (p *SectorPipeline) SymbolsPerSector() int {
	return (p.Codec.EncodedBits() + BitsPerVoxel - 1) / BitsPerVoxel
}

// AcquireScratch returns a scratch from the pipeline's pool, allocating
// only when the pool is empty.
func (p *SectorPipeline) AcquireScratch() *SectorScratch {
	if sc, ok := p.scratch.Get().(*SectorScratch); ok {
		return sc
	}
	symbols := p.SymbolsPerSector()
	// bits is padded to the voxel grid; the pad tail is zeroed once here
	// and never written afterwards (EncodeSectorInto fills exactly
	// EncodedBits), so modulation always sees zero padding.
	return &SectorScratch{
		bits:    make([]uint8, symbols*BitsPerVoxel),
		symbols: make([]uint8, symbols),
		points:  make([]Point, symbols),
		post:    make([][numSymbols]float64, symbols),
		llrs:    make([]float64, symbols*BitsPerVoxel),
		codec:   p.Codec.AcquireScratch(),
	}
}

// ReleaseScratch returns a scratch to the pool.
func (p *SectorPipeline) ReleaseScratch(sc *SectorScratch) { p.scratch.Put(sc) }

// WriteSector encodes a payload into the voxel symbols to be written.
// The returned slice is freshly allocated; hot paths use WriteSectorWith.
func (p *SectorPipeline) WriteSector(payload []byte) []uint8 {
	sc := p.AcquireScratch()
	out := append([]uint8(nil), p.WriteSectorWith(sc, payload)...)
	p.ReleaseScratch(sc)
	return out
}

// WriteSectorWith encodes a payload into voxel symbols using sc's
// buffers. The returned slice aliases sc and is valid until sc's next
// use; callers that retain symbols (e.g. platter media) must copy.
func (p *SectorPipeline) WriteSectorWith(sc *SectorScratch, payload []byte) []uint8 {
	p.Codec.EncodeSectorWith(sc.codec, payload, sc.bits[:p.Codec.EncodedBits()])
	ModulateInto(sc.bits, sc.symbols)
	return sc.symbols
}

// WriteSectorsInto encodes payloads[i] into dsts[i] (each of length
// SymbolsPerSector) on one scratch, the batched form the burn path uses
// to amortize scratch and table walks across a whole track.
func (p *SectorPipeline) WriteSectorsInto(sc *SectorScratch, payloads [][]byte, dsts [][]uint8) {
	if len(payloads) != len(dsts) {
		panic("voxel: payload/destination count mismatch")
	}
	for i, payload := range payloads {
		p.Codec.EncodeSectorWith(sc.codec, payload, sc.bits[:p.Codec.EncodedBits()])
		ModulateInto(sc.bits, dsts[i])
	}
}

// ReadSector pushes written symbols through the read channel and
// decodes them. rng drives the stochastic read noise.
func (p *SectorPipeline) ReadSector(symbols []uint8, rng *sim.RNG) ldpc.SectorDecode {
	sc := p.AcquireScratch()
	res := p.ReadSectorWith(sc, symbols, rng)
	p.ReleaseScratch(sc)
	return res
}

// ReadSectorWith is ReadSector on caller-owned scratch: the channel
// observations, posteriors, and LLR buffers are all reused, so the only
// steady-state allocation is the decoded payload itself.
func (p *SectorPipeline) ReadSectorWith(sc *SectorScratch, symbols []uint8, rng *sim.RNG) ldpc.SectorDecode {
	return p.ReadSectorWithBuf(sc, symbols, rng, nil)
}

// ReadSectorWithBuf is ReadSectorWith decoding into the caller's
// payload buffer (length ≥ the codec's PayloadBytes); with a non-nil
// buffer steady-state decode allocates nothing. Pass nil to allocate
// the payload.
func (p *SectorPipeline) ReadSectorWithBuf(sc *SectorScratch, symbols []uint8, rng *sim.RNG, payload []byte) ldpc.SectorDecode {
	received := p.Ch.TransmitInto(p.Mod, symbols, rng, sc.points[:0])
	post := p.Demap.PosteriorsInto(received, sc.post[:0])
	llrs := BitLLRsInto(post, sc.llrs[:0])
	return p.Codec.DecodeSectorWith(sc.codec, llrs[:p.Codec.EncodedBits()], p.MaxIters, payload)
}

// MeasureSectorFailureRate estimates the sector failure probability at
// the pipeline's operating point by Monte Carlo: the §6 calibration
// that fixes the within-track redundancy provisioning.
func (p *SectorPipeline) MeasureSectorFailureRate(trials int, seed uint64) float64 {
	rng := sim.NewRNG(seed)
	payload := make([]byte, p.Codec.PayloadBytes)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	symbols := p.WriteSector(payload)
	sc := p.AcquireScratch()
	defer p.ReleaseScratch(sc)
	failures := 0
	for t := 0; t < trials; t++ {
		if res := p.ReadSectorWith(sc, symbols, rng); !res.OK {
			failures++
		}
	}
	return float64(failures) / float64(trials)
}
