package voxel

import (
	"silica/internal/ldpc"
	"silica/internal/sim"
)

// SectorPipeline is the full per-sector data path: payload bytes →
// LDPC-coded bits → voxel symbols → channel → soft demap → BP decode →
// payload bytes. It is the unit the write pipeline, verification, and
// the decode stack all share.
type SectorPipeline struct {
	Codec    *ldpc.SectorCodec
	Mod      *Modulation
	Ch       Channel
	Demap    *Demapper
	MaxIters int
}

// NewSectorPipeline wires a sector codec to a channel model.
func NewSectorPipeline(codec *ldpc.SectorCodec, ch Channel) *SectorPipeline {
	mod := NewModulation()
	return &SectorPipeline{
		Codec:    codec,
		Mod:      mod,
		Ch:       ch,
		Demap:    NewDemapper(mod, ch),
		MaxIters: 50,
	}
}

// SymbolsPerSector reports the voxel count of one coded sector.
func (p *SectorPipeline) SymbolsPerSector() int {
	return (p.Codec.EncodedBits() + BitsPerVoxel - 1) / BitsPerVoxel
}

// WriteSector encodes a payload into the voxel symbols to be written.
func (p *SectorPipeline) WriteSector(payload []byte) []uint8 {
	bits := p.Codec.EncodeSector(payload)
	return Modulate(PadBits(bits))
}

// ReadSector pushes written symbols through the read channel and
// decodes them. rng drives the stochastic read noise.
func (p *SectorPipeline) ReadSector(symbols []uint8, rng *sim.RNG) ldpc.SectorDecode {
	received := p.Ch.Transmit(p.Mod, symbols, rng)
	post := p.Demap.Posteriors(received)
	llrs := BitLLRs(post)
	return p.Codec.DecodeSector(llrs[:p.Codec.EncodedBits()], p.MaxIters)
}

// MeasureSectorFailureRate estimates the sector failure probability at
// the pipeline's operating point by Monte Carlo: the §6 calibration
// that fixes the within-track redundancy provisioning.
func (p *SectorPipeline) MeasureSectorFailureRate(trials int, seed uint64) float64 {
	rng := sim.NewRNG(seed)
	payload := make([]byte, p.Codec.PayloadBytes)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	symbols := p.WriteSector(payload)
	failures := 0
	for t := 0; t < trials; t++ {
		if res := p.ReadSector(symbols, rng); !res.OK {
			failures++
		}
	}
	return float64(failures) / float64(trials)
}
