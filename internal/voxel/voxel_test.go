package voxel

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"silica/internal/ldpc"
	"silica/internal/sim"
)

func TestConstellationGeometry(t *testing.T) {
	m := NewModulation()
	// All 16 points distinct, all within [-1,1]^2.
	seen := map[Point]bool{}
	for s := 0; s < 16; s++ {
		p := m.IdealPoint(uint8(s))
		if p.A < -1 || p.A > 1 || p.R < -1 || p.R > 1 {
			t.Fatalf("symbol %d point %+v out of range", s, p)
		}
		if seen[p] {
			t.Fatalf("duplicate constellation point %+v", p)
		}
		seen[p] = true
	}
	// Minimum pairwise distance matches MinDistance.
	min := math.Inf(1)
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			pa, pb := m.IdealPoint(uint8(a)), m.IdealPoint(uint8(b))
			d := math.Hypot(pa.A-pb.A, pa.R-pb.R)
			if d < min {
				min = d
			}
		}
	}
	if math.Abs(min-m.MinDistance()) > 1e-12 {
		t.Fatalf("min distance = %v, want %v", min, m.MinDistance())
	}
}

func TestGrayMappingNeighbourProperty(t *testing.T) {
	// Horizontally adjacent constellation points must differ in exactly
	// one bit (that is the point of Gray mapping: most symbol errors
	// cause a single bit error).
	m := NewModulation()
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			pa, pb := m.IdealPoint(uint8(a)), m.IdealPoint(uint8(b))
			d := math.Hypot(pa.A-pb.A, pa.R-pb.R)
			if math.Abs(d-m.MinDistance()) < 1e-9 {
				diff := a ^ b
				if diff&(diff-1) != 0 {
					t.Fatalf("adjacent symbols %d,%d differ in >1 bit", a, b)
				}
			}
		}
	}
}

func TestModulateRoundTrip(t *testing.T) {
	err := quick.Check(func(raw []byte) bool {
		bits := ldpc.BytesToBits(raw)
		return bitsEq(Demodulate(Modulate(PadBits(bits)))[:len(bits)], bits)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestModulateUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Modulate did not panic")
		}
	}()
	Modulate(make([]uint8, 5))
}

func TestPadBits(t *testing.T) {
	if len(PadBits(make([]uint8, 4))) != 4 {
		t.Fatal("aligned input should not grow")
	}
	if len(PadBits(make([]uint8, 5))) != 8 {
		t.Fatal("5 bits should pad to 8")
	}
}

func TestCleanChannelRoundTrip(t *testing.T) {
	m := NewModulation()
	ch := CleanChannel()
	rng := sim.NewRNG(1)
	syms := make([]uint8, 256)
	for i := range syms {
		syms[i] = uint8(rng.Intn(16))
	}
	rx := ch.Transmit(m, syms, rng)
	d := NewDemapper(m, ch)
	got := HardSymbols(d.Posteriors(rx))
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("clean channel corrupted symbol %d", i)
		}
	}
}

func TestPosteriorsAreDistributions(t *testing.T) {
	m := NewModulation()
	ch := DefaultChannel()
	rng := sim.NewRNG(2)
	syms := make([]uint8, 500)
	for i := range syms {
		syms[i] = uint8(rng.Intn(16))
	}
	post := NewDemapper(m, ch).Posteriors(ch.Transmit(m, syms, rng))
	for i, p := range post {
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("voxel %d: probability %v out of range", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("voxel %d: posterior sums to %v", i, sum)
		}
	}
}

func TestDefaultChannelRawSymbolErrorRate(t *testing.T) {
	// The operating point should have a raw symbol error rate in the
	// "few percent" range: low enough for LDPC, high enough that the
	// code is actually doing work.
	m := NewModulation()
	ch := DefaultChannel()
	rng := sim.NewRNG(3)
	const n = 20000
	syms := make([]uint8, n)
	for i := range syms {
		syms[i] = uint8(rng.Intn(16))
	}
	got := HardSymbols(NewDemapper(m, ch).Posteriors(ch.Transmit(m, syms, rng)))
	errs := 0
	for i := range syms {
		if got[i] != syms[i] {
			errs++
		}
	}
	rate := float64(errs) / n
	if rate < 0.001 || rate > 0.15 {
		t.Fatalf("raw symbol error rate = %v, want a few percent", rate)
	}
}

func TestMissingVoxelsDegradePosteriors(t *testing.T) {
	m := NewModulation()
	ch := CleanChannel()
	ch.PMissing = 1 // every voxel missing
	ch.Sigma = 0.1
	rng := sim.NewRNG(4)
	syms := []uint8{15, 15, 15, 15}
	post := NewDemapper(m, ch).Posteriors(ch.Transmit(m, syms, rng))
	// A missing voxel reads near the origin; the posterior should not
	// be confidently the written corner symbol.
	for _, p := range post {
		if p[15] > 0.9 {
			t.Fatalf("missing voxel still confidently decoded: %v", p[15])
		}
	}
}

func TestBitLLRSigns(t *testing.T) {
	m := NewModulation()
	ch := CleanChannel()
	rng := sim.NewRNG(5)
	syms := make([]uint8, 64)
	for i := range syms {
		syms[i] = uint8(i % 16)
	}
	llrs := BitLLRs(NewDemapper(m, ch).Posteriors(ch.Transmit(m, syms, rng)))
	bits := Demodulate(syms)
	for i, b := range bits {
		if b == 0 && llrs[i] <= 0 {
			t.Fatalf("bit %d is 0 but LLR %v", i, llrs[i])
		}
		if b == 1 && llrs[i] >= 0 {
			t.Fatalf("bit %d is 1 but LLR %v", i, llrs[i])
		}
	}
}

func testPipeline(t testing.TB, ch Channel) *SectorPipeline {
	t.Helper()
	code, err := ldpc.NewCode(512, 384, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ldpc.NewSectorCodec(code, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return NewSectorPipeline(sc, ch)
}

func TestSectorPipelineRoundTrip(t *testing.T) {
	p := testPipeline(t, DefaultChannel())
	rng := sim.NewRNG(6)
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	syms := p.WriteSector(payload)
	if len(syms) != p.SymbolsPerSector() {
		t.Fatalf("symbols = %d, want %d", len(syms), p.SymbolsPerSector())
	}
	for trial := 0; trial < 5; trial++ {
		res := p.ReadSector(syms, rng)
		if !res.OK {
			t.Fatalf("trial %d: sector decode failed at default operating point", trial)
		}
		if !bytes.Equal(res.Payload, payload) {
			t.Fatalf("trial %d: payload mismatch", trial)
		}
	}
}

// TestCalibratedSectorFailureRate pins the §6 calibration: at the
// default operating point, sector failures are rare (target ~1e-3; we
// assert < 2% over a modest Monte Carlo run) but the channel is genuinely
// noisy (raw BER > 0).
func TestCalibratedSectorFailureRate(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo")
	}
	p := testPipeline(t, DefaultChannel())
	rate := p.MeasureSectorFailureRate(300, 7)
	if rate > 0.02 {
		t.Fatalf("sector failure rate = %v, want < 0.02", rate)
	}
}

func TestHarshChannelFailsSectors(t *testing.T) {
	ch := DefaultChannel()
	ch.Sigma = 0.5 // hopeless
	p := testPipeline(t, ch)
	rate := p.MeasureSectorFailureRate(20, 8)
	if rate < 0.5 {
		t.Fatalf("harsh channel failure rate = %v, want mostly failing", rate)
	}
}

func bitsEq(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkSectorWritePath(b *testing.B) {
	p := testPipeline(b, DefaultChannel())
	payload := make([]byte, 1000)
	b.SetBytes(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.WriteSector(payload)
	}
}

func BenchmarkSectorReadPath(b *testing.B) {
	p := testPipeline(b, DefaultChannel())
	rng := sim.NewRNG(9)
	payload := make([]byte, 1000)
	syms := p.WriteSector(payload)
	b.SetBytes(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := p.ReadSector(syms, rng); !res.OK {
			// Rare failures are acceptable here; they are the 1e-3.
			continue
		}
	}
}
