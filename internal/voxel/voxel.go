// Package voxel models the analog path of Silica: how coded bits become
// physical voxel modifications in glass and how polarization-microscopy
// readout turns them back into soft information (§3, §3.2).
//
// This is the repository's substitution for hardware the paper gates
// on. The real system writes voxels with a femtosecond laser (encoding
// 3–4 bits each in polarization angle and retardance) and decodes read
// drive images with a U-Net that outputs, per voxel, "a 2D array of
// probability distributions over the encoded symbols". We reproduce
// that contract: a 16-point (angle, retardance) constellation carries 4
// bits per voxel; a channel model applies sensor noise (AWGN),
// inter-symbol interference from XY-adjacent voxels, scattered light
// from neighbouring Z layers, and rare write-time voxel loss; and a
// maximum-a-posteriori soft demapper emits exactly the per-voxel symbol
// posteriors (and derived bit LLRs) that the LDPC layer consumes. The
// noise parameters are calibrated so sector LDPC failure lands near the
// 1e-3 the paper reports for its prototype (§6).
package voxel

import (
	"fmt"
	"math"

	"silica/internal/sim"
)

// BitsPerVoxel is fixed at 4 ("on the order of 3 or 4" per the paper).
const BitsPerVoxel = 4

// numSymbols is 2^BitsPerVoxel.
const numSymbols = 1 << BitsPerVoxel

// grayOrder maps 2-bit values to grid positions so that adjacent
// constellation points differ in one bit per axis.
var grayOrder = [4]int{0, 1, 3, 2}

// Point is a received or ideal observation in the normalized
// (polarization angle, retardance) plane.
type Point struct{ A, R float64 }

// Modulation is the 16-point constellation on a 4x4 grid in [-1,1]^2
// with Gray mapping per axis.
type Modulation struct {
	points [numSymbols]Point
}

// NewModulation returns the standard 16-symbol constellation.
func NewModulation() *Modulation {
	m := &Modulation{}
	levels := [4]float64{-1, -1.0 / 3, 1.0 / 3, 1}
	for sym := 0; sym < numSymbols; sym++ {
		aBits := sym & 3
		rBits := sym >> 2 & 3
		m.points[sym] = Point{A: levels[grayOrder[aBits]], R: levels[grayOrder[rBits]]}
	}
	return m
}

// IdealPoint returns the constellation point of a symbol.
func (m *Modulation) IdealPoint(sym uint8) Point { return m.points[sym&(numSymbols-1)] }

// MinDistance returns the minimum distance between constellation
// points (2/3 for the 4x4 grid).
func (m *Modulation) MinDistance() float64 { return 2.0 / 3 }

// Modulate packs bits (LSB-first per symbol, len must be a multiple of
// BitsPerVoxel) into symbols.
func Modulate(bits []uint8) []uint8 {
	out := make([]uint8, len(bits)/BitsPerVoxel)
	ModulateInto(bits, out)
	return out
}

// ModulateInto packs bits into out, which must hold
// len(bits)/BitsPerVoxel symbols.
func ModulateInto(bits, out []uint8) {
	if len(bits)%BitsPerVoxel != 0 {
		panic(fmt.Sprintf("voxel: %d bits not a multiple of %d", len(bits), BitsPerVoxel))
	}
	for i := range out[:len(bits)/BitsPerVoxel] {
		var s uint8
		for b := 0; b < BitsPerVoxel; b++ {
			s |= (bits[i*BitsPerVoxel+b] & 1) << uint(b)
		}
		out[i] = s
	}
}

// Demodulate unpacks symbols back to bits (hard decision helper).
func Demodulate(symbols []uint8) []uint8 {
	out := make([]uint8, len(symbols)*BitsPerVoxel)
	for i, s := range symbols {
		for b := 0; b < BitsPerVoxel; b++ {
			out[i*BitsPerVoxel+b] = s >> uint(b) & 1
		}
	}
	return out
}

// PadBits zero-pads bits up to a whole number of voxels.
func PadBits(bits []uint8) []uint8 {
	rem := len(bits) % BitsPerVoxel
	if rem == 0 {
		return bits
	}
	return append(append([]uint8(nil), bits...), make([]uint8, BitsPerVoxel-rem)...)
}

// Channel models the end-to-end write+read impairments of one sector.
type Channel struct {
	// Sigma is the per-axis AWGN sensor-noise standard deviation.
	Sigma float64
	// ISI couples each voxel to its XY neighbours: the received point
	// gains ISI * mean(neighbour ideal points).
	ISI float64
	// Scatter couples each voxel to the adjacent Z layers, modelled as
	// Scatter * (random other-layer symbol's ideal point).
	Scatter float64
	// PMissing is the probability a voxel was never formed (write-time
	// laser-energy error, §5); a missing voxel reads back as glass
	// background near the origin.
	PMissing float64
	// Width is the sector's voxel-grid width for ISI neighbourhood
	// computation.
	Width int
}

// DefaultChannel returns the calibrated operating point: raw symbol
// error rate of a few percent, which the sector LDPC cleans to ~1e-3
// sector failures — the figure the paper observed on its prototype.
func DefaultChannel() Channel {
	return Channel{Sigma: 0.16, ISI: 0.08, Scatter: 0.05, PMissing: 1e-5, Width: 64}
}

// CleanChannel returns a noiseless channel for tests.
func CleanChannel() Channel { return Channel{Sigma: 1e-4, Width: 64} }

// Transmit converts written symbols into received observations.
func (c Channel) Transmit(m *Modulation, symbols []uint8, rng *sim.RNG) []Point {
	return c.TransmitInto(m, symbols, rng, nil)
}

// TransmitInto is Transmit reusing dst's storage when it is large
// enough, so a pooled buffer can absorb the observations. Every entry
// of the result is overwritten.
func (c Channel) TransmitInto(m *Modulation, symbols []uint8, rng *sim.RNG, dst []Point) []Point {
	w := c.Width
	if w <= 0 {
		w = 64
	}
	out := dst[:0]
	if cap(out) >= len(symbols) {
		out = out[:len(symbols)]
	} else {
		out = make([]Point, len(symbols))
	}
	for i, s := range symbols {
		if c.PMissing > 0 && rng.Float64() < c.PMissing {
			// Missing voxel: background signal near origin.
			out[i] = Point{A: rng.Normal(0, 2*c.Sigma+0.05), R: rng.Normal(0, 2*c.Sigma+0.05)}
			continue
		}
		p := m.IdealPoint(s)
		a, r := p.A, p.R
		if c.ISI > 0 {
			var na, nr float64
			var n int
			for _, d := range [4]int{-1, +1, -w, +w} {
				j := i + d
				if j < 0 || j >= len(symbols) {
					continue
				}
				// Avoid wrapping across row edges for horizontal
				// neighbours.
				if (d == -1 || d == 1) && j/w != i/w {
					continue
				}
				q := m.IdealPoint(symbols[j])
				na += q.A
				nr += q.R
				n++
			}
			if n > 0 {
				a += c.ISI * na / float64(n)
				r += c.ISI * nr / float64(n)
			}
		}
		if c.Scatter > 0 {
			q := m.IdealPoint(uint8(rng.Intn(numSymbols)))
			a += c.Scatter * q.A
			r += c.Scatter * q.R
		}
		a += rng.Normal(0, c.Sigma)
		r += rng.Normal(0, c.Sigma)
		out[i] = Point{A: a, R: r}
	}
	return out
}

// EffectiveSigma is the total per-axis noise deviation the demapper
// assumes: sensor noise plus ISI and scatter treated as Gaussian.
func (c Channel) EffectiveSigma() float64 {
	// Neighbour mean amplitude per axis is ~0.56 for the 4x4 grid;
	// scatter symbol amplitude ~0.745 RMS per axis.
	isiVar := c.ISI * c.ISI * 0.31
	scatVar := c.Scatter * c.Scatter * 0.56
	return math.Sqrt(c.Sigma*c.Sigma + isiVar + scatVar)
}

// Demapper computes soft outputs from received points — the stand-in
// for the paper's U-Net inference stage.
type Demapper struct {
	mod   *Modulation
	sigma float64
}

// NewDemapper builds a demapper matched to the channel.
func NewDemapper(m *Modulation, ch Channel) *Demapper {
	return &Demapper{mod: m, sigma: ch.EffectiveSigma()}
}

// Posteriors returns, for each received point, the probability
// distribution over the 16 symbols — the exact output contract of the
// paper's ML decode stage (§3.2).
func (d *Demapper) Posteriors(received []Point) [][numSymbols]float64 {
	return d.PosteriorsInto(received, nil)
}

// PosteriorsInto is Posteriors reusing dst's storage when it is large
// enough. Every entry of the result is overwritten.
func (d *Demapper) PosteriorsInto(received []Point, dst [][numSymbols]float64) [][numSymbols]float64 {
	out := dst[:0]
	if cap(out) >= len(received) {
		out = out[:len(received)]
	} else {
		out = make([][numSymbols]float64, len(received))
	}
	inv2s2 := 1 / (2 * d.sigma * d.sigma)
	for i, y := range received {
		var logp [numSymbols]float64
		max := math.Inf(-1)
		for s := 0; s < numSymbols; s++ {
			p := d.mod.points[s]
			da, dr := y.A-p.A, y.R-p.R
			lp := -(da*da + dr*dr) * inv2s2
			logp[s] = lp
			if lp > max {
				max = lp
			}
		}
		var sum float64
		for s := range logp {
			logp[s] = math.Exp(logp[s] - max)
			sum += logp[s]
		}
		for s := range logp {
			out[i][s] = logp[s] / sum
		}
	}
	return out
}

// BitLLRs converts symbol posteriors to per-bit LLRs (positive favours
// bit 0), the input format of the LDPC decoder.
func BitLLRs(posteriors [][numSymbols]float64) []float64 {
	return BitLLRsInto(posteriors, nil)
}

// BitLLRsInto is BitLLRs reusing dst's storage when it is large enough.
// Every entry of the result is overwritten.
func BitLLRsInto(posteriors [][numSymbols]float64, dst []float64) []float64 {
	const eps = 1e-300
	out := dst[:0]
	if cap(out) >= len(posteriors)*BitsPerVoxel {
		out = out[:len(posteriors)*BitsPerVoxel]
	} else {
		out = make([]float64, len(posteriors)*BitsPerVoxel)
	}
	for i, post := range posteriors {
		for b := 0; b < BitsPerVoxel; b++ {
			var p0, p1 float64
			for s := 0; s < numSymbols; s++ {
				if s>>uint(b)&1 == 0 {
					p0 += post[s]
				} else {
					p1 += post[s]
				}
			}
			out[i*BitsPerVoxel+b] = math.Log((p0 + eps) / (p1 + eps))
		}
	}
	return out
}

// HardSymbols returns the max-posterior symbol per voxel.
func HardSymbols(posteriors [][numSymbols]float64) []uint8 {
	out := make([]uint8, len(posteriors))
	for i, post := range posteriors {
		best, bestP := 0, -1.0
		for s, p := range post {
			if p > bestP {
				best, bestP = s, p
			}
		}
		out[i] = uint8(best)
	}
	return out
}
