package obs

import (
	"math"
	"sync/atomic"
)

// histShards spreads concurrent observers across independent count
// arrays so the hot path never shares a contended cacheline. Power of
// two so the shard pick is a mask.
const histShards = 16

// histShard is one observer stripe. The trailing pad keeps shards on
// separate cachelines so atomic adds in one stripe do not bounce the
// others' lines.
type histShard struct {
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	_       [56]byte
}

// Histogram buckets float64 observations into fixed ascending bounds
// (bucket i holds v <= bounds[i]; the last bucket is +Inf). Observe is
// lock-free and allocation-free: a binary search over the bounds, one
// atomic add, and one CAS for the sum, on a shard picked by hashing
// the value bits. Snapshots merge the shards without stopping writers.
type Histogram struct {
	bounds []float64
	shards [histShards]histShard
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// NewHistogram builds a standalone histogram (registry-free use, e.g.
// benchmarks). Bounds must be ascending.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// LogBuckets returns n log-spaced bucket bounds starting at min and
// growing by factor: the fixed-bucket scheme every obs histogram uses
// (exact quantiles stay in stats.Sample; obs trades exactness for a
// lock-free hot path).
func LogBuckets(min, factor float64, n int) []float64 {
	if min <= 0 || factor <= 1 || n < 1 {
		panic("obs: LogBuckets needs min > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets spans 1µs to ~67s at ×2 per bucket: wide enough for
// gateway microsecond latencies and multi-second flushes alike.
func DurationBuckets() []float64 { return LogBuckets(1e-6, 2, 27) }

// MarginBuckets spans LDPC decode margins (0..1) at ×1.5 from 0.01.
func MarginBuckets() []float64 { return LogBuckets(0.01, 1.5, 12) }

// bucketIdx returns the index of the first bound >= v (len(bounds)
// for the overflow bucket). Hand-rolled binary search: no callback,
// inlinable, ~5 compares for 30 bounds.
func bucketIdx(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v > bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Observe records one value. Safe for concurrent use; allocates
// nothing.
func (h *Histogram) Observe(v float64) {
	// Shard by the value's own bits (mixed): observations of a noisy
	// quantity differ in their mantissa essentially always, so
	// concurrent observers spread across stripes without needing a
	// per-CPU hint.
	hash := math.Float64bits(v) * 0x9e3779b97f4a7c15
	sh := &h.shards[hash>>60&(histShards-1)]
	sh.counts[bucketIdx(h.bounds, v)].Add(1)
	for {
		old := sh.sumBits.Load()
		if sh.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistSnapshot is a merged copy of a histogram's state.
type HistSnapshot struct {
	Bounds []float64 // ascending; implicit +Inf overflow bucket
	Counts []uint64  // per-bucket (not cumulative), len(Bounds)+1
	Count  uint64
	Sum    float64
}

// Snapshot merges the shards copy-on-read. Writers are never stopped,
// so the result is a consistent-enough view: each bucket count is
// exact at some instant during the call.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Sum += math.Float64frombits(sh.sumBits.Load())
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// inside the containing bucket, the standard Prometheus histogram
// estimate. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		// Bucket i contains the rank. Interpolate between its bounds.
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i == len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // overflow: clamp to last bound
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}

// Mean reports the mean observation, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
