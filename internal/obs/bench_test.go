package obs

import (
	"context"
	"testing"
)

// BenchmarkObsObserve is the hot-path bar from DESIGN.md §9: a
// counter or histogram observation must cost < 50 ns and 0 allocs, so
// instrumenting the gateway workers and codec loops never serializes
// them.

func BenchmarkObsObserveCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("silica_bench_total", "bench", L("class", "put"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsObserveHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("silica_bench_seconds", "bench", DurationBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
}

func BenchmarkObsObserveHistogramParallel(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("silica_bench_seconds", "bench", DurationBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-6
		for pb.Next() {
			h.Observe(v)
			v += 1.7e-6
			if v > 1 {
				v = 1e-6
			}
		}
	})
}

func BenchmarkObsSpan(b *testing.B) {
	tr := NewTracer(1, 0)
	ctx, trace := tr.Start(context.Background(), "bench")
	_ = ctx
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.StartSpan("step").End()
		if trace.n.Load() >= MaxSpans {
			trace.n.Store(0)
		}
	}
	b.StopTimer()
	tr.Finish(trace)
}
