package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("silica_test_total", "a counter", L("class", "put"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("silica_test_total", "a counter", L("class", "put")); again != c {
		t.Fatalf("re-registration returned a different counter instance")
	}
	other := r.Counter("silica_test_total", "a counter", L("class", "get"))
	if other == c {
		t.Fatalf("distinct labels share an instance")
	}
	g := r.Gauge("silica_test_depth", "a gauge")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("silica_test_total", "c")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on kind mismatch")
		}
	}()
	r.Gauge("silica_test_total", "g")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram(LogBuckets(1, 2, 4)) // bounds 1,2,4,8
	for _, v := range []float64{0.5, 1, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	wantCounts := []uint64{2, 1, 1, 1, 1} // <=1, <=2, <=4, <=8, +Inf
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if math.Abs(s.Sum-113) > 1e-9 {
		t.Fatalf("sum = %v, want 113", s.Sum)
	}
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 = %v, want within first bucket", q)
	}
	if q := s.Quantile(1); q != 8 {
		t.Fatalf("q1 = %v, want clamp to last bound 8", q)
	}
	if q := s.Quantile(0.5); q <= 0 || q > 4 {
		t.Fatalf("median = %v out of range", q)
	}
	var empty HistSnapshot
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatalf("empty snapshot must report zeros")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i+1) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	want := float64(goroutines*perG) * float64(goroutines*perG+1) / 2 * 1e-6
	if math.Abs(s.Sum-want)/want > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
}

func TestWritePromParsesBack(t *testing.T) {
	r := NewRegistry()
	r.Counter("silica_test_requests_total", "requests", L("class", "put")).Add(7)
	r.Gauge("silica_test_queue_depth", "depth", L("class", "put")).Set(3)
	h := r.Histogram("silica_test_latency_seconds", "latency", LogBuckets(0.001, 10, 3))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)
	hooked := false
	r.OnScrape(func() { hooked = true })

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !hooked {
		t.Fatalf("scrape hook did not run")
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE silica_test_requests_total counter",
		"# TYPE silica_test_queue_depth gauge",
		"# TYPE silica_test_latency_seconds histogram",
		`silica_test_requests_total{class="put"} 7`,
		`silica_test_latency_seconds_bucket{le="+Inf"} 3`,
		"silica_test_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, text)
	}
	if s, ok := FindSample(samples, "silica_test_requests_total", map[string]string{"class": "put"}); !ok || s.Value != 7 {
		t.Fatalf("parsed counter = %+v ok=%v, want 7", s, ok)
	}
	if s, ok := FindSample(samples, "silica_test_queue_depth", map[string]string{"class": "put"}); !ok || s.Value != 3 {
		t.Fatalf("parsed gauge = %+v ok=%v, want 3", s, ok)
	}
	if s, ok := FindSample(samples, "silica_test_latency_seconds_count", nil); !ok || s.Value != 3 {
		t.Fatalf("parsed histogram count = %+v ok=%v, want 3", s, ok)
	}
	if q, ok := HistQuantile(samples, "silica_test_latency_seconds", nil, 0.5); !ok || q <= 0 {
		t.Fatalf("HistQuantile = %v ok=%v", q, ok)
	}
}

func TestTraceSpansThroughContext(t *testing.T) {
	tr := NewTracer(1, time.Nanosecond)
	ctx, trace := tr.Start(context.Background(), "put")
	if trace == nil {
		t.Fatalf("sampleEvery=1 must trace")
	}
	if FromContext(ctx) != trace {
		t.Fatalf("context does not carry the trace")
	}
	end := StartSpan(ctx, "reserve")
	time.Sleep(time.Millisecond)
	end.End()

	// Concurrent spans from parallel workers.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := trace.StartSpan("burn")
			time.Sleep(time.Millisecond)
			e.End()
		}()
	}
	wg.Wait()
	tr.Finish(trace)

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent ring has %d traces, want 1", len(recent))
	}
	rec := recent[0]
	if rec.Name != "put" || len(rec.Spans) != 5 {
		t.Fatalf("trace = %+v, want put with 5 spans", rec)
	}
	names := map[string]int{}
	for _, sp := range rec.Spans {
		names[sp.Name]++
		if sp.Dur <= 0 {
			t.Fatalf("span %q has non-positive duration", sp.Name)
		}
	}
	if names["reserve"] != 1 || names["burn"] != 4 {
		t.Fatalf("span names = %v", names)
	}
	if slow := tr.Slow(); len(slow) != 1 {
		t.Fatalf("slow ring has %d traces, want 1 (threshold 1ns)", len(slow))
	}
}

func TestTracerSamplingAndNilSafety(t *testing.T) {
	tr := NewTracer(4, 0)
	sampled := 0
	for i := 0; i < 16; i++ {
		ctx, trace := tr.Start(context.Background(), "get")
		if trace != nil {
			sampled++
			tr.Finish(trace)
		}
		// Untraced paths must be no-ops end to end.
		StartSpan(ctx, "noop").End()
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4", sampled)
	}
	var nilTracer *Tracer
	ctx, trace := nilTracer.Start(context.Background(), "x")
	if trace != nil {
		t.Fatalf("nil tracer sampled")
	}
	nilTracer.Finish(trace)
	if nilTracer.Recent() != nil || nilTracer.Slow() != nil {
		t.Fatalf("nil tracer rings must be empty")
	}
	FromContext(ctx).StartSpan("noop").End()
	FromContext(nil).StartSpan("noop").End()
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(1, 0)
	for i := 0; i < recentRing*3; i++ {
		_, trace := tr.Start(context.Background(), "op")
		tr.Finish(trace)
	}
	recent := tr.Recent()
	if len(recent) != recentRing {
		t.Fatalf("ring grew to %d, want bounded at %d", len(recent), recentRing)
	}
	// Newest first.
	if recent[0].ID <= recent[1].ID {
		t.Fatalf("ring not newest-first: %d then %d", recent[0].ID, recent[1].ID)
	}
}
