package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpans bounds one trace's span storage. Spans are a fixed inline
// array so starting and ending them never allocates; past the cap,
// further spans are silently dropped (the trace still records its
// total duration).
const MaxSpans = 64

// Span is one named, timed step of a request: queue wait, staging
// reserve, encrypt, encode, burn, verify, publish, decode tiers.
// Start is the offset from the trace's start.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"duration_ns"`
}

// Trace accumulates the spans of one request (or one flush pass). It
// is carried through context.Context (ContextWith/FromContext) and is
// safe for concurrent span recording: parallel flush workers each
// claim a slot atomically and write only to it. All span methods are
// nil-safe, so untraced requests (sampling miss) pay a nil check and
// nothing else.
type Trace struct {
	ID    uint64
	Name  string
	start time.Time

	n      atomic.Int32
	spans  [MaxSpans]Span
	tracer *Tracer
}

// Start reports when the trace began.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// SpanEnd finishes one span; the zero value (from a nil trace or a
// full span table) is a no-op.
type SpanEnd struct {
	t    *Trace
	name string
	idx  int32
	t0   time.Time
}

// StartSpan claims a span slot and starts its clock. Call End on the
// returned handle when the step completes; every span must end before
// the trace is finished.
func (t *Trace) StartSpan(name string) SpanEnd {
	if t == nil {
		return SpanEnd{}
	}
	idx := t.n.Add(1) - 1
	if int(idx) >= MaxSpans {
		return SpanEnd{}
	}
	return SpanEnd{t: t, name: name, idx: idx, t0: time.Now()}
}

// End records the span. The whole Span struct is written at once so a
// concurrent snapshot never observes a half-filled record.
func (s SpanEnd) End() {
	if s.t == nil {
		return
	}
	s.t.spans[s.idx] = Span{
		Name:  s.name,
		Start: s.t0.Sub(s.t.start),
		Dur:   time.Since(s.t0),
	}
}

// Elapsed reports time since the span started without ending it (for
// observing a duration into a histogram as well as a span).
func (s SpanEnd) Elapsed() time.Duration {
	if s.t == nil {
		return 0
	}
	return time.Since(s.t0)
}

// StartSpan on a context: shorthand for FromContext(ctx).StartSpan.
func StartSpan(ctx context.Context, name string) SpanEnd {
	return FromContext(ctx).StartSpan(name)
}

type traceCtxKey struct{}

// ContextWith returns ctx carrying t.
func ContextWith(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// TraceRecord is a finished trace as served by /v1/traces.
type TraceRecord struct {
	ID       uint64        `json:"id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Slow     bool          `json:"slow,omitempty"`
	Spans    []Span        `json:"spans"`
}

// Tracer makes the sampling decision, pools Trace records, and keeps
// two bounded rings of finished traces: the most recent sampled
// traces, and every trace slower than SlowAfter (slow traces are
// always kept, so the tail stays visible even at low sample rates).
type Tracer struct {
	sampleEvery uint64
	slowAfter   time.Duration

	seq  atomic.Uint64
	ids  atomic.Uint64
	pool sync.Pool

	mu     sync.Mutex
	recent []TraceRecord
	rNext  int
	rLen   int
	slow   []TraceRecord
	sNext  int
	sLen   int
}

// Ring capacities: enough history for a dashboard poll, bounded so an
// idle daemon's memory stays flat.
const (
	recentRing = 128
	slowRing   = 64
)

// NewTracer builds a tracer sampling one request in sampleEvery
// (<= 1 traces everything) and ring-keeping traces slower than
// slowAfter (<= 0 disables the slow ring).
func NewTracer(sampleEvery int, slowAfter time.Duration) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{
		sampleEvery: uint64(sampleEvery),
		slowAfter:   slowAfter,
		pool:        sync.Pool{New: func() any { return new(Trace) }},
		recent:      make([]TraceRecord, recentRing),
		slow:        make([]TraceRecord, slowRing),
	}
}

// Start makes the sampling decision for one request. On a hit it
// returns a derived context carrying a fresh (pooled) trace; on a miss
// it returns ctx unchanged and a nil trace, and every downstream span
// call no-ops. A nil tracer never samples.
func (tr *Tracer) Start(ctx context.Context, name string) (context.Context, *Trace) {
	if tr == nil {
		return ctx, nil
	}
	if tr.seq.Add(1)%tr.sampleEvery != 0 {
		return ctx, nil
	}
	t := tr.pool.Get().(*Trace)
	t.ID = tr.ids.Add(1)
	t.Name = name
	t.start = time.Now()
	t.n.Store(0)
	t.tracer = tr
	return ContextWith(ctx, t), t
}

// Finish records a trace into the rings and returns it to the pool.
// nil-safe. The trace must not be used after Finish.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	dur := time.Since(t.start)
	n := int(t.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	rec := TraceRecord{
		ID:       t.ID,
		Name:     t.Name,
		Start:    t.start,
		Duration: dur,
		Slow:     tr.slowAfter > 0 && dur >= tr.slowAfter,
		Spans:    make([]Span, 0, n),
	}
	for i := 0; i < n; i++ {
		// A span started but never ended leaves a zero record; drop it
		// rather than report a phantom zero-duration step.
		if t.spans[i].Name != "" {
			rec.Spans = append(rec.Spans, t.spans[i])
		}
		t.spans[i] = Span{}
	}
	tr.mu.Lock()
	tr.recent[tr.rNext] = rec
	tr.rNext = (tr.rNext + 1) % len(tr.recent)
	if tr.rLen < len(tr.recent) {
		tr.rLen++
	}
	if rec.Slow {
		tr.slow[tr.sNext] = rec
		tr.sNext = (tr.sNext + 1) % len(tr.slow)
		if tr.sLen < len(tr.slow) {
			tr.sLen++
		}
	}
	tr.mu.Unlock()
	tr.pool.Put(t)
}

// ring returns buf's live entries newest-first.
func ringCopy(buf []TraceRecord, next, length int) []TraceRecord {
	out := make([]TraceRecord, 0, length)
	for i := 0; i < length; i++ {
		out = append(out, buf[((next-1-i)%len(buf)+len(buf))%len(buf)])
	}
	return out
}

// Recent returns the sampled-trace ring, newest first.
func (tr *Tracer) Recent() []TraceRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return ringCopy(tr.recent, tr.rNext, tr.rLen)
}

// Slow returns the slow-trace ring, newest first.
func (tr *Tracer) Slow() []TraceRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return ringCopy(tr.slow, tr.sNext, tr.sLen)
}
