package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteProm renders every registered family in Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, then one
// line per labeled instance; histograms expand into cumulative
// _bucket{le=...} series plus _sum and _count. Scrape hooks run first
// so mirrored gauges (queue depths, staging occupancy, health states)
// are fresh. Writers are never stopped: values are atomic loads.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, hook := range hooks {
		hook()
	}
	bw := bufio.NewWriter(w)
	for _, f := range families {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		sort.Sort(byLabels{keys, children})
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range children {
			switch f.kind {
			case counterKind:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(c.labels, "", ""), c.counter.Value())
			case gaugeKind:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(c.labels, "", ""), formatFloat(c.gauge.Value()))
			case histogramKind:
				s := c.hist.Snapshot()
				var cum uint64
				for i, cnt := range s.Counts {
					cum += cnt
					le := "+Inf"
					if i < len(s.Bounds) {
						le = formatFloat(s.Bounds[i])
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(c.labels, "le", le), cum)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(c.labels, "", ""), formatFloat(s.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(c.labels, "", ""), s.Count)
			}
		}
	}
	return bw.Flush()
}

// byLabels sorts children (and their keys, kept in lockstep) by label
// identity for deterministic exposition.
type byLabels struct {
	keys     []string
	children []*child
}

func (s byLabels) Len() int           { return len(s.keys) }
func (s byLabels) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s byLabels) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.children[i], s.children[j] = s.children[j], s.children[i]
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram le bound). Empty label sets render as nothing.
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	ls := append([]Label(nil), labels...)
	if extraKey != "" {
		ls = append(ls, Label{extraKey, extraVal})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// PromSample is one parsed exposition line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseProm parses Prometheus text exposition (the subset WriteProm
// emits: HELP/TYPE comments, name{labels} value lines). Tools
// (silica-load's end-of-run scrape, silicactl top) and tests use it to
// read /metrics back.
func ParseProm(r io.Reader) ([]PromSample, error) {
	var out []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parsePromLine(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("malformed labels %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		// Scan to the closing quote, honoring escapes.
		var val strings.Builder
		i := 1
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		into[key] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

// matchLabels reports whether sample labels contain every pair in
// want.
func matchLabels(got, want map[string]string) bool {
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// FindSample returns the first parsed sample with the given name whose
// labels contain every pair in want.
func FindSample(samples []PromSample, name string, want map[string]string) (PromSample, bool) {
	for _, s := range samples {
		if s.Name == name && matchLabels(s.Labels, want) {
			return s, true
		}
	}
	return PromSample{}, false
}

// HistQuantile estimates a quantile from parsed <name>_bucket samples
// whose labels contain every pair in want — the consumer-side
// counterpart of HistSnapshot.Quantile, used by silica-load to put
// server-side and client-side percentiles side by side.
func HistQuantile(samples []PromSample, name string, want map[string]string, q float64) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range samples {
		if s.Name != name+"_bucket" || !matchLabels(s.Labels, want) {
			continue
		}
		leStr := s.Labels["le"]
		le := 0.0
		if leStr == "+Inf" {
			le = math.Inf(1)
		} else {
			v, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = v
		}
		buckets = append(buckets, bucket{le: le, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	rank := q * total
	prevCum, prevLe := 0.0, 0.0
	for i, b := range buckets {
		if b.cum < rank {
			prevCum, prevLe = b.cum, b.le
			continue
		}
		le := b.le
		if math.IsInf(le, 1) && i > 0 {
			// +Inf bucket: clamp to the last finite bound.
			le = buckets[i-1].le
		}
		count := b.cum - prevCum
		if count <= 0 || math.IsInf(le, 1) {
			return le, true
		}
		return prevLe + (le-prevLe)*(rank-prevCum)/count, true
	}
	return buckets[len(buckets)-1].le, true
}
