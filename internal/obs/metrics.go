// Package obs is the observability subsystem: the telemetry layer the
// paper's whole evaluation (§7) leans on — per-class latency
// percentiles, drive/worker utilization (Fig. 6), congestion and
// queueing visibility (Fig. 7), scrub/rebuild progress. It has three
// parts:
//
//   - a low-overhead metrics registry: atomic Counter/Gauge and a
//     sharded, lock-free Histogram with fixed log-spaced buckets,
//     registered by name+labels and snapshotable without stopping
//     writers;
//   - request tracing: a Trace carried through context.Context,
//     recording named spans (queue wait, staging reserve, encrypt,
//     encode, burn, verify, publish; decode tiers on the read path)
//     into a bounded in-memory ring of recent and slow traces;
//   - exposition: Prometheus text rendering (WriteProm) plus a small
//     parser (ParseProm) so tools and tests can read it back.
//
// The hot-path discipline matches the codec's zero-alloc contract:
// one observation is a few atomic operations, allocates nothing, and
// never takes a lock. obs depends only on the standard library, so
// any layer of the system may import it.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. The zero value is
// usable, but counters obtained from a Registry are also rendered by
// WriteProm.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored as atomic
// bits so readers never block writers.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; contended adds retry).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return "counter"
	}
}

// child is one labeled instance within a family.
type child struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every labeled instance of one metric name.
type family struct {
	name, help string
	kind       metricKind
	bounds     []float64 // histogram bucket bounds

	mu       sync.Mutex
	order    []string // label-key registration order
	children map[string]*child
}

// labelKey builds the canonical identity of a label set (sorted by
// key, so registration order does not split instances).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func (f *family) child(labels []Label) *child {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labels: append([]Label(nil), labels...)}
	switch f.kind {
	case counterKind:
		c.counter = &Counter{}
	case gaugeKind:
		c.gauge = &Gauge{}
	case histogramKind:
		c.hist = newHistogram(f.bounds)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Registry holds metric families and scrape hooks. Registration
// (Counter/Gauge/Histogram lookups) takes a lock and should happen at
// construction time; observations on the returned instances are
// lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family finds or creates a family, enforcing kind consistency.
func (r *Registry) family(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*child),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or finds) a counter under name+labels. Repeated
// calls with the same identity return the same instance.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.family(name, help, counterKind, nil).child(labels).counter
}

// Gauge registers (or finds) a gauge under name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.family(name, help, gaugeKind, nil).child(labels).gauge
}

// Histogram registers (or finds) a histogram under name+labels with
// fixed ascending bucket bounds (see LogBuckets). Bounds are taken
// from the first registration of the name.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds must be ascending", name))
		}
	}
	return r.family(name, help, histogramKind, bounds).child(labels).hist
}

// OnScrape registers a hook run before every WriteProm, for gauges
// that mirror external state (queue depths, staging occupancy, health
// state counts) rather than being updated on a hot path.
func (r *Registry) OnScrape(hook func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, hook)
	r.mu.Unlock()
}
