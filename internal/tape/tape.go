// Package tape is a digital twin of the incumbent: a robotic tape
// library of the kind the paper's §1–2 characterize. Modern tape is
// built for the disaster-recovery workload — kilometre-long media,
// minute-scale load/thread/spool times, gantry robots that serialize
// cartridge motion, and high streaming throughput (~360 MB/s). The
// paper's argument is that cloud archival traffic is the opposite
// shape (small reads dominate), so this model exists to be compared
// against the Silica library twin on the same traces.
//
// The model: requests queue and group per cartridge exactly as
// Silica's scheduler groups per platter; a free drive plus a free
// robot arm start a mount (robot fetch + load/thread), the drive
// spools to each file (long seeks — tape is sequential), streams it,
// and on drain rewinds/unloads with the robot returning the
// cartridge. Robot arms are few and shared; they are the library's
// choke point under IOPS load.
package tape

import (
	"fmt"

	"silica/internal/controller"
	"silica/internal/media"
	"silica/internal/sim"
	"silica/internal/stats"
)

// Config sizes a tape library.
type Config struct {
	Drives     int
	RobotArms  int
	Cartridges int
	// Throughput is the streaming rate, bytes/sec (LTO-class: ~360 MB/s).
	Throughput float64
	// RobotFetch is one robot trip (shelf->drive or back), seconds.
	RobotFetch float64
	// LoadThread is mounting + threading + position-to-BOT, seconds
	// ("spooling takes over a minute", §1).
	LoadThread float64
	// Unload is rewind + unthread, seconds. Tape must rewind before
	// eject; worst case is a full spool.
	Unload float64
	// Seek is the spool time distribution to a random file.
	SeekMean, SeekMax float64
	Seed              uint64
}

// DefaultConfig models a contemporary enterprise tape library sized
// like the Silica MDU: 20 drives, a handful of robot arms.
func DefaultConfig() Config {
	return Config{
		Drives:     20,
		RobotArms:  4,
		Cartridges: 4000,
		Throughput: 360e6,
		RobotFetch: 15,
		LoadThread: 75,
		Unload:     60,
		SeekMean:   45,
		SeekMax:    110,
		Seed:       1,
	}
}

// Library is the tape twin.
type Library struct {
	cfg   Config
	sim   *sim.Simulator
	rng   *sim.RNG
	sched *controller.Scheduler

	freeDrives int
	freeArms   int
	armQueue   []func() // work waiting for a robot arm
	busyTape   map[media.PlatterID]bool

	completions *stats.Sample
	mounts      int
}

// New builds a tape library.
func New(cfg Config) (*Library, error) {
	if cfg.Drives < 1 || cfg.RobotArms < 1 || cfg.Cartridges < 1 || cfg.Throughput <= 0 {
		return nil, fmt.Errorf("tape: invalid config %+v", cfg)
	}
	return &Library{
		cfg:         cfg,
		sim:         sim.New(),
		rng:         sim.NewRNG(cfg.Seed).Fork("tape"),
		sched:       controller.NewScheduler(1),
		freeDrives:  cfg.Drives,
		freeArms:    cfg.RobotArms,
		busyTape:    make(map[media.PlatterID]bool),
		completions: stats.NewSample(),
	}, nil
}

// Completions returns customer completion times.
func (l *Library) Completions() *stats.Sample { return l.completions }

// Mounts reports how many cartridge mounts the run needed.
func (l *Library) Mounts() int { return l.mounts }

// Submit queues a read request (Platter is interpreted as a cartridge).
func (l *Library) Submit(req *controller.Request) {
	l.sched.Add(req, 0)
	l.dispatch()
}

// withArm runs fn while holding a robot arm for dur seconds.
func (l *Library) withArm(dur float64, fn func()) {
	task := func() {
		l.freeArms--
		l.sim.Schedule(dur, func() {
			l.freeArms++
			fn()
			l.pumpArms()
		})
	}
	if l.freeArms > 0 {
		task()
		return
	}
	l.armQueue = append(l.armQueue, task)
}

func (l *Library) pumpArms() {
	for l.freeArms > 0 && len(l.armQueue) > 0 {
		t := l.armQueue[0]
		l.armQueue = l.armQueue[1:]
		t()
	}
}

func (l *Library) dispatch() {
	for l.freeDrives > 0 {
		tape, ok := l.sched.SelectPlatter(0, func(p media.PlatterID) bool { return !l.busyTape[p] })
		if !ok {
			return
		}
		reqs := l.sched.Take(tape)
		l.busyTape[tape] = true
		l.freeDrives--
		l.mounts++
		// Robot fetches the cartridge, then the drive loads/threads.
		l.withArm(l.cfg.RobotFetch, func() {
			l.sim.Schedule(l.cfg.LoadThread, func() {
				l.service(tape, reqs)
			})
		})
	}
}

// service spools to and streams each request, absorbing late arrivals
// for the mounted cartridge, then unloads.
func (l *Library) service(tape media.PlatterID, reqs []*controller.Request) {
	if late := l.sched.Take(tape); len(late) > 0 {
		reqs = append(reqs, late...)
	}
	if len(reqs) == 0 {
		// Drain done: rewind/unload, robot returns the cartridge.
		l.sim.Schedule(l.cfg.Unload, func() {
			l.withArm(l.cfg.RobotFetch, func() {
				l.busyTape[tape] = false
				l.freeDrives++
				l.dispatch()
			})
		})
		return
	}
	var offset float64
	for _, r := range reqs {
		r := r
		// Spool seek: triangular-ish around the mean, capped.
		seek := l.rng.Range(0.3, 1.7) * l.cfg.SeekMean
		if seek > l.cfg.SeekMax {
			seek = l.cfg.SeekMax
		}
		offset += seek + float64(r.Bytes)/l.cfg.Throughput
		l.sim.Schedule(offset, func() {
			l.completions.Add(l.sim.Now() - r.Arrival)
			if r.Done != nil {
				r.Done(l.sim.Now())
			}
		})
	}
	l.sim.Schedule(offset, func() { l.service(tape, nil) })
}

// RunTrace submits all requests at their arrival times and runs to
// completion.
func (l *Library) RunTrace(reqs []*controller.Request, horizon float64) {
	for _, r := range reqs {
		r := r
		l.sim.At(r.Arrival, func() { l.Submit(r) })
	}
	l.sim.Run()
	_ = horizon
}
