package tape

import (
	"testing"

	"silica/internal/controller"
	"silica/internal/media"
	"silica/internal/sim"
)

func mkReqs(n int, interval float64, bytes int64, cartridges int, seed uint64) []*controller.Request {
	rng := sim.NewRNG(seed)
	out := make([]*controller.Request, n)
	for i := range out {
		out[i] = &controller.Request{
			ID:      controller.RequestID(i + 1),
			Platter: media.PlatterID(rng.Intn(cartridges)),
			Bytes:   bytes,
			Arrival: float64(i) * interval,
		}
	}
	return out
}

func TestSingleReadTimeline(t *testing.T) {
	l, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := 0.0
	req := &controller.Request{ID: 1, Platter: 3, Bytes: 4 << 20, Arrival: 0,
		Done: func(tc float64) { done = tc }}
	l.RunTrace([]*controller.Request{req}, 0)
	// Robot fetch (15) + load/thread (75) + seek (~13.5-76.5) + stream.
	if done < 100 || done > 180 {
		t.Fatalf("single small read took %v s; tape overheads wrong", done)
	}
	if l.Mounts() != 1 {
		t.Fatalf("mounts = %d", l.Mounts())
	}
}

func TestAllComplete(t *testing.T) {
	l, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reqs := mkReqs(500, 1, 4<<20, 1000, 3)
	l.RunTrace(reqs, 0)
	if got := l.Completions().N(); got != 500 {
		t.Fatalf("completed %d/500", got)
	}
}

func TestGroupingAmortizesMounts(t *testing.T) {
	l, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 200 requests against only 5 cartridges arriving in a burst:
	// mounts should be far fewer than requests.
	reqs := mkReqs(200, 0.01, 4<<20, 5, 5)
	l.RunTrace(reqs, 0)
	if l.Completions().N() != 200 {
		t.Fatal("requests lost")
	}
	if l.Mounts() > 40 {
		t.Fatalf("mounts = %d; per-cartridge grouping broken", l.Mounts())
	}
}

func TestRobotArmsSerialize(t *testing.T) {
	few := DefaultConfig()
	few.RobotArms = 1
	many := DefaultConfig()
	many.RobotArms = 8
	tails := map[int]float64{}
	for arms, cfg := range map[int]Config{1: few, 8: many} {
		l, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := mkReqs(800, 0.2, 4<<20, 800, 7)
		l.RunTrace(reqs, 0)
		tails[arms] = l.Completions().P999()
	}
	if tails[8] >= tails[1] {
		t.Fatalf("more robot arms should shorten tails: 1 arm %v vs 8 arms %v",
			tails[1], tails[8])
	}
}

func TestStreamingThroughputMatters(t *testing.T) {
	// For a very large read, streaming dominates: completion ~ bytes/rate.
	l, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bytes := int64(360e9) // 1000 s of streaming
	done := 0.0
	req := &controller.Request{ID: 1, Platter: 1, Bytes: bytes, Arrival: 0,
		Done: func(tc float64) { done = tc }}
	l.RunTrace([]*controller.Request{req}, 0)
	if done < 1000 || done > 1250 {
		t.Fatalf("1000 s stream completed at %v", done)
	}
}

func TestConfigValidation(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Drives = 0 },
		func(c *Config) { c.RobotArms = 0 },
		func(c *Config) { c.Cartridges = 0 },
		func(c *Config) { c.Throughput = 0 },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		l, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		reqs := mkReqs(300, 0.5, 4<<20, 500, 11)
		l.RunTrace(reqs, 0)
		return l.Completions().Sum()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("tape twin not deterministic: %v vs %v", a, b)
	}
}
