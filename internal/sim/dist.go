package sim

import (
	"math"
	"sort"
)

// Dist is a sampleable distribution of non-negative durations or sizes.
type Dist interface {
	Sample(r *RNG) float64
}

// Constant always returns its value.
type Constant float64

// Sample implements Dist.
func (c Constant) Sample(*RNG) float64 { return float64(c) }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *RNG) float64 { return r.Range(u.Lo, u.Hi) }

// TruncatedNormal samples N(Mean, Stddev^2) clamped to [Lo, Hi].
type TruncatedNormal struct {
	Mean, Stddev, Lo, Hi float64
}

// Sample implements Dist.
func (t TruncatedNormal) Sample(r *RNG) float64 {
	v := r.Normal(t.Mean, t.Stddev)
	return math.Min(t.Hi, math.Max(t.Lo, v))
}

// TruncatedLogNormal samples a lognormal clamped to [Lo, Hi]. Mu and
// Sigma parameterize the underlying normal of the log.
type TruncatedLogNormal struct {
	Mu, Sigma, Lo, Hi float64
}

// Sample implements Dist.
func (t TruncatedLogNormal) Sample(r *RNG) float64 {
	v := r.LogNormal(t.Mu, t.Sigma)
	return math.Min(t.Hi, math.Max(t.Lo, v))
}

// LogNormalFromMedian builds a TruncatedLogNormal with the given median
// and an approximate max: sigma is chosen so that ~99.9% of the mass is
// below max, and samples are clamped to [lo, max].
func LogNormalFromMedian(median, lo, max float64) TruncatedLogNormal {
	// P(X <= max) = Phi(ln(max/median)/sigma) = 0.999 => sigma = ln(max/median)/3.09.
	sigma := math.Log(max/median) / 3.09
	if sigma <= 0 {
		sigma = 0.01
	}
	return TruncatedLogNormal{Mu: math.Log(median), Sigma: sigma, Lo: lo, Hi: max}
}

// Empirical samples from a piecewise-linear inverse CDF defined by
// (quantile, value) knots. This is how the digital twin replays measured
// latency distributions from the hardware prototype (paper §7.1).
type Empirical struct {
	qs, vs []float64
}

// NewEmpirical builds an empirical distribution from (quantile, value)
// pairs. Quantiles must start at 0, end at 1, and be strictly increasing;
// values must be non-decreasing. It panics on malformed input because the
// knots are always compiled-in calibration data.
func NewEmpirical(quantiles, values []float64) *Empirical {
	if len(quantiles) != len(values) || len(quantiles) < 2 {
		panic("sim: empirical distribution needs matching quantile/value knots")
	}
	if quantiles[0] != 0 || quantiles[len(quantiles)-1] != 1 {
		panic("sim: empirical quantiles must span [0,1]")
	}
	for i := 1; i < len(quantiles); i++ {
		if quantiles[i] <= quantiles[i-1] || values[i] < values[i-1] {
			panic("sim: empirical knots must be increasing")
		}
	}
	return &Empirical{qs: quantiles, vs: values}
}

// Sample implements Dist by inverse-CDF interpolation.
func (e *Empirical) Sample(r *RNG) float64 {
	return e.Quantile(r.Float64())
}

// Quantile returns the value at quantile q in [0,1].
func (e *Empirical) Quantile(q float64) float64 {
	if q <= 0 {
		return e.vs[0]
	}
	if q >= 1 {
		return e.vs[len(e.vs)-1]
	}
	i := sort.SearchFloat64s(e.qs, q)
	if i == 0 {
		return e.vs[0]
	}
	lo, hi := e.qs[i-1], e.qs[i]
	frac := (q - lo) / (hi - lo)
	return e.vs[i-1] + frac*(e.vs[i]-e.vs[i-1])
}

// Zipf samples ranks in [0, N) with probability proportional to
// 1/(rank+1)^S. S>0; larger S is more skewed. Used to reproduce the
// skewed request placement of §7.5.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the CDF over n ranks with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: zipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample returns a rank in [0, N).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N reports the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }
