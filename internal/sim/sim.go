// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for the Silica "digital twin" (SOSP'23, §7):
// a binary-heap event queue keyed by virtual time, a simulation clock, and
// helpers for building processes out of scheduled callbacks. All
// stochastic behaviour flows through explicitly seeded RNGs (see rng.go),
// so a simulation run is a pure function of its configuration and seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual time in seconds since the start of the simulation.
type Time = float64

// Event is a scheduled callback. Events with equal times fire in the
// order they were scheduled (FIFO tie-break by sequence number), which
// keeps runs deterministic.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index, -1 when not queued
	dead bool
}

// At reports the virtual time this event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the event queue and the virtual clock.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns a simulator with the clock at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now reports the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are queued.
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule queues fn to run after delay seconds of virtual time.
// A negative delay panics: the past is immutable.
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: schedule with invalid delay %v at t=%v", delay, s.now))
	}
	return s.At(s.now+delay, fn)
}

// At queues fn to run at absolute virtual time t (t >= Now).
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule in the past: %v < %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn, idx: -1}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// NextAt reports the virtual time of the earliest live pending event.
// ok is false when the queue holds no live events. Cancelled events
// encountered at the top of the heap are discarded.
func (s *Simulator) NextAt() (Time, bool) {
	for len(s.events) > 0 {
		if s.events[0].dead {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0].at, true
	}
	return 0, false
}

// Step executes the single earliest pending event. It reports false when
// the queue is empty.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.dead {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time <= deadline, then advances the clock
// to deadline. Events scheduled past the deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	for len(s.events) > 0 {
		// Peek.
		next := s.events[0]
		if next.dead {
			heap.Pop(&s.events)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}
