package sim

import (
	"hash/fnv"
	"math"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded through splitmix64). Every stochastic component in
// the simulator owns its own RNG forked by name from a root seed, so
// adding a component never perturbs the random streams of the others.
type RNG struct {
	seed uint64
	s    [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{seed: seed}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Fork derives an independent generator from this one's seed material and
// a name. Forking is stable: the same parent seed and name always yield
// the same stream, regardless of how much the parent has been consumed.
func (r *RNG) Fork(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return NewRNG(r.seed ^ h.Sum64())
}

// ForkAt derives an independent generator from this one's seed material
// and a pair of indices. It is the hot-path sibling of Fork: the codec
// engine forks one stream per (track, sector) so parallel workers never
// share generator state, and formatting a name per sector would cost
// more than the decode it seeds. Like Fork it depends only on the seed,
// never on consumed state, so the derived stream is identical however
// the work is scheduled.
func (r *RNG) ForkAt(a, b uint64) *RNG {
	x := r.seed ^ (a+1)*0xa24baed4963ee407
	z := splitmix64(&x)
	x = z ^ (b+1)*0x9fb21c651e98df25
	return NewRNG(splitmix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Range returns a uniform sample in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a sample from N(mean, stddev^2) (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a sample whose logarithm is N(mu, sigma^2).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns a sample from Exp(rate); mean is 1/rate.
func (r *RNG) Exponential(rate float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Poisson returns a Poisson(lambda) sample. For large lambda it uses the
// normal approximation, which is fine for workload generation.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := int(math.Round(r.Normal(lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
