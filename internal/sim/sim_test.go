package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(3, func() { got = append(got, 3) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(2, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(1, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order at %d: got %d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []Time
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() { times = append(times, s.Now()) })
	})
	s.Schedule(1.5, func() { times = append(times, s.Now()) })
	s.Run()
	want := []Time{1, 1.5, 3}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", s.Fired())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i), func() { count++ })
	}
	s.RunUntil(5)
	if count != 5 {
		t.Fatalf("events fired = %d, want 5", count)
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %v, want 5", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("events fired = %d, want 10", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %v, want 42", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	root := NewRNG(1)
	a := root.Fork("shuttles")
	// Consuming the parent must not change what a fork yields.
	root2 := NewRNG(1)
	for i := 0; i < 100; i++ {
		root2.Uint64()
	}
	a2 := root2.Fork("shuttles")
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatal("fork stream depends on parent consumption")
		}
	}
	b := NewRNG(1).Fork("drives")
	c := NewRNG(1).Fork("shuttles")
	if b.Uint64() == c.Uint64() && b.Uint64() == c.Uint64() && b.Uint64() == c.Uint64() {
		t.Fatal("differently named forks produced identical streams")
	}
}

func TestRNGForkAtIndependence(t *testing.T) {
	root := NewRNG(1)
	a := root.ForkAt(3, 7)
	// Consuming the parent must not change what an indexed fork yields.
	root2 := NewRNG(1)
	for i := 0; i < 100; i++ {
		root2.Uint64()
	}
	a2 := root2.ForkAt(3, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatal("indexed fork stream depends on parent consumption")
		}
	}
	// Nearby indices must yield distinct streams (including swapped
	// coordinates, which a naive XOR mix would collide).
	seen := map[uint64][2]uint64{}
	for _, idx := range [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {3, 7}, {7, 3}} {
		v := NewRNG(1).ForkAt(idx[0], idx[1]).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("ForkAt%v and ForkAt%v produced identical first draws", prev, idx)
		}
		seen[v] = idx
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(ss/float64(n) - mean*mean)
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean = %v, want ~5", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", std)
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(13)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(0.5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~2", mean)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(17)
	for _, lambda := range []float64{0.5, 4, 100} {
		n := 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestEmpiricalQuantiles(t *testing.T) {
	e := NewEmpirical([]float64{0, 0.5, 1}, []float64{1, 2, 4})
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 1.5}, {0.5, 2}, {0.75, 3}, {1, 4},
	}
	for _, c := range cases {
		if got := e.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestEmpiricalSampleWithinRange(t *testing.T) {
	e := NewEmpirical([]float64{0, 0.86, 1}, []float64{2.932, 3.0, 3.02})
	r := NewRNG(23)
	for i := 0; i < 10000; i++ {
		v := e.Sample(r)
		if v < 2.932 || v > 3.02 {
			t.Fatalf("sample %v out of calibrated range", v)
		}
	}
}

func TestEmpiricalRejectsMalformed(t *testing.T) {
	for _, c := range []struct{ qs, vs []float64 }{
		{[]float64{0, 1}, []float64{1}},
		{[]float64{0.1, 1}, []float64{1, 2}},
		{[]float64{0, 0.9}, []float64{1, 2}},
		{[]float64{0, 0.5, 0.5, 1}, []float64{1, 2, 3, 4}},
		{[]float64{0, 1}, []float64{2, 1}},
	} {
		func() {
			defer func() { recover() }()
			NewEmpirical(c.qs, c.vs)
			t.Fatalf("malformed empirical %v/%v did not panic", c.qs, c.vs)
		}()
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.2)
	r := NewRNG(29)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[1] {
		t.Fatalf("rank 0 (%d) should dominate rank 1 (%d)", counts[0], counts[1])
	}
	// Paper: "the most accessed platter has an order of magnitude more
	// data read than the second most accessed" under their Zipf. Ours
	// should at least be strongly skewed vs the tail.
	if counts[0] < 10*counts[500] {
		t.Fatalf("zipf not skewed: head %d vs mid %d", counts[0], counts[500])
	}
}

func TestTruncatedDistsRespectBounds(t *testing.T) {
	r := NewRNG(31)
	tn := TruncatedNormal{Mean: 1, Stddev: 5, Lo: 0, Hi: 2}
	tl := TruncatedLogNormal{Mu: 0, Sigma: 3, Lo: 0.1, Hi: 9}
	for i := 0; i < 5000; i++ {
		if v := tn.Sample(r); v < 0 || v > 2 {
			t.Fatalf("truncated normal out of bounds: %v", v)
		}
		if v := tl.Sample(r); v < 0.1 || v > 9 {
			t.Fatalf("truncated lognormal out of bounds: %v", v)
		}
	}
}

func TestLogNormalFromMedian(t *testing.T) {
	d := LogNormalFromMedian(0.6, 0, 2)
	r := NewRNG(37)
	s := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		s = append(s, d.Sample(r))
	}
	var below int
	for _, v := range s {
		if v <= 0.6 {
			below++
		}
		if v > 2 {
			t.Fatalf("sample above max: %v", v)
		}
	}
	frac := float64(below) / float64(len(s))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("median calibration off: %v of samples below target median", frac)
	}
}

func TestSimulatorDeterminismEndToEnd(t *testing.T) {
	run := func() []float64 {
		s := New()
		r := NewRNG(99)
		var out []float64
		var step func()
		n := 0
		step = func() {
			out = append(out, s.Now())
			n++
			if n < 100 {
				s.Schedule(r.Exponential(1), step)
			}
		}
		s.Schedule(0, step)
		s.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical seeds produced different trajectories")
		}
	}
}
