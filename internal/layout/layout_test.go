package layout

import (
	"math"
	"testing"

	"silica/internal/geometry"
	"silica/internal/media"
	"silica/internal/metadata"
	"silica/internal/staging"
)

// TestTable1 reproduces the paper's Table 1 exactly.
func TestTable1(t *testing.T) {
	cases := []struct {
		info, red int
		overhead  float64
		racks     int
	}{
		{12, 3, 0.25, 6},
		{16, 3, 0.188, 7},
		{24, 3, 0.125, 10},
	}
	for _, c := range cases {
		if got := WriteOverhead(c.info, c.red); math.Abs(got-c.overhead) > 0.001 {
			t.Fatalf("%d+%d overhead = %v, want %v", c.info, c.red, got, c.overhead)
		}
		if got := MinStorageRacks(c.info+c.red, 10); got != c.racks {
			t.Fatalf("%d+%d racks = %d, want %d", c.info, c.red, got, c.racks)
		}
	}
}

func TestMinStorageRacksFloor(t *testing.T) {
	// §6: a library needs at least six storage racks, even for tiny
	// sets.
	if got := MinStorageRacks(4, 10); got != MinLibraryRacks {
		t.Fatalf("tiny set racks = %d, want %d", got, MinLibraryRacks)
	}
}

func TestRackCapacityDP(t *testing.T) {
	// 10 shelves -> 3 per rack; 4-rack window cap 11.
	if got := rackCapacity(1, 10); got != 3 {
		t.Fatalf("1 rack = %d, want 3", got)
	}
	if got := rackCapacity(3, 10); got != 9 {
		t.Fatalf("3 racks = %d, want 9", got)
	}
	if got := rackCapacity(4, 10); got != 11 {
		t.Fatalf("4 racks = %d, want 11 (window cap)", got)
	}
	if got := rackCapacity(0, 10); got != 0 {
		t.Fatal("0 racks should hold 0")
	}
	// Monotone in racks.
	prev := 0
	for r := 1; r <= 12; r++ {
		c := rackCapacity(r, 10)
		if c < prev {
			t.Fatalf("capacity not monotone at %d racks", r)
		}
		prev = c
	}
}

func testLayout(t *testing.T) *geometry.Layout {
	t.Helper()
	l, err := geometry.NewLayout(geometry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPlaceSetInvariants(t *testing.T) {
	l := testLayout(t)
	p := NewPlacer(l)
	slots, err := p.PlaceSet(19) // 16+3
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 19 {
		t.Fatalf("placed %d, want 19", len(slots))
	}
	if err := ValidateSet(slots); err != nil {
		t.Fatal(err)
	}
	// Vertical separation within racks.
	byRack := map[int][]int{}
	for _, s := range slots {
		byRack[s.Rack] = append(byRack[s.Rack], s.Shelf)
	}
	for rack, shelves := range byRack {
		for i := range shelves {
			for j := i + 1; j < len(shelves); j++ {
				d := shelves[i] - shelves[j]
				if d < 0 {
					d = -d
				}
				if d < MinVerticalSep {
					t.Fatalf("rack %d: shelves %d and %d too close", rack, shelves[i], shelves[j])
				}
			}
		}
	}
}

func TestPlaceManySets(t *testing.T) {
	l := testLayout(t)
	p := NewPlacer(l)
	for set := 0; set < 40; set++ {
		slots, err := p.PlaceSet(19)
		if err != nil {
			t.Fatalf("set %d: %v", set, err)
		}
		if err := ValidateSet(slots); err != nil {
			t.Fatalf("set %d: %v", set, err)
		}
	}
	if p.Occupied() != 40*19 {
		t.Fatalf("occupied = %d", p.Occupied())
	}
}

func TestPlaceSetSpreadsLoad(t *testing.T) {
	l := testLayout(t)
	p := NewPlacer(l)
	for set := 0; set < 20; set++ {
		if _, err := p.PlaceSet(19); err != nil {
			t.Fatal(err)
		}
	}
	// Load should spread across all storage racks, not pile up.
	counts := map[int]int{}
	for slot := range p.slotUsed {
		counts[slot.Rack]++
	}
	if len(counts) != len(l.StorageRacks()) {
		t.Fatalf("only %d racks used of %d", len(counts), len(l.StorageRacks()))
	}
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max > 3*min {
		t.Fatalf("rack load skew %d..%d", min, max)
	}
}

func TestPlaceSetTooLarge(t *testing.T) {
	l := testLayout(t)
	p := NewPlacer(l)
	// 7 storage racks, 10 shelves: capacity is bounded; a 60-member
	// set cannot fit.
	if _, err := p.PlaceSet(60); err == nil {
		t.Fatal("oversized set placed")
	}
}

func TestValidateSetDetectsSharedZone(t *testing.T) {
	slots := []geometry.SlotAddr{
		{Rack: 2, Shelf: 3, Slot: 0},
		{Rack: 2, Shelf: 3, Slot: 7},
	}
	if err := ValidateSet(slots); err == nil {
		t.Fatal("shared blast zone not detected")
	}
}

func file(name string, size int64) *staging.File {
	return &staging.File{
		Key:     metadata.FileKey{Account: "a", Name: name},
		Version: 1,
		Size:    size,
	}
}

func TestAssignFilesSimple(t *testing.T) {
	geom := media.TinyGeometry() // 1000-byte sectors, 8 info/track
	batch := []*staging.File{
		file("x", 2500), // 3 sectors
		file("y", 1000), // 1 sector
	}
	plans := AssignFiles(batch, geom, 0)
	if len(plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(plans))
	}
	p := plans[0]
	if len(p.Entries) != 2 {
		t.Fatalf("entries = %d", len(p.Entries))
	}
	if p.Entries[0].FirstSector != 0 || p.Entries[0].SectorCount != 3 {
		t.Fatalf("x placement = %+v", p.Entries[0])
	}
	if p.Entries[1].FirstSector != 3 || p.Entries[1].SectorCount != 1 {
		t.Fatalf("y placement = %+v", p.Entries[1])
	}
	if p.SectorsUsed != 4 {
		t.Fatalf("sectors used = %d", p.SectorsUsed)
	}
}

func TestAssignFilesShardsLargeFiles(t *testing.T) {
	geom := media.TinyGeometry()
	// 20 sectors with an 8-sector shard cap -> 3 shards on 3 platters.
	batch := []*staging.File{file("big", 20000)}
	plans := AssignFiles(batch, geom, 8)
	if len(plans) != 3 {
		t.Fatalf("plans = %d, want 3", len(plans))
	}
	total := 0
	var bytes int64
	for i, p := range plans {
		if len(p.Entries) != 1 {
			t.Fatalf("plan %d entries = %d", i, len(p.Entries))
		}
		e := p.Entries[0]
		if e.Shard != i {
			t.Fatalf("plan %d shard = %d", i, e.Shard)
		}
		total += e.SectorCount
		bytes += e.Bytes
	}
	if total != 20 {
		t.Fatalf("total sectors = %d", total)
	}
	if bytes != 20000 {
		t.Fatalf("total bytes = %d", bytes)
	}
}

func TestAssignFilesFillsPlatters(t *testing.T) {
	geom := media.TinyGeometry()
	platterInfo := geom.InfoTracksPerPlatter() * geom.InfoSectorsPerTrack
	var batch []*staging.File
	// Enough one-sector files to fill 2.5 platters.
	n := platterInfo*5/2 + 1
	for i := 0; i < n; i++ {
		batch = append(batch, file(string(rune('a'+i%26))+string(rune('0'+i/26)), 1000))
	}
	plans := AssignFiles(batch, geom, 0)
	if len(plans) != 3 {
		t.Fatalf("plans = %d, want 3", len(plans))
	}
	for i, p := range plans[:2] {
		if p.SectorsUsed != platterInfo {
			t.Fatalf("plan %d used %d/%d sectors", i, p.SectorsUsed, platterInfo)
		}
	}
}

func TestAssignFilesEmptyBatch(t *testing.T) {
	if plans := AssignFiles(nil, media.TinyGeometry(), 0); len(plans) != 0 {
		t.Fatalf("empty batch produced %d plans", len(plans))
	}
}

func TestSectorTracks(t *testing.T) {
	geom := media.TinyGeometry() // 8 info sectors per track
	cases := []struct {
		first, count, wantTrack, wantN int
	}{
		{0, 1, 0, 1},
		{0, 8, 0, 1},
		{0, 9, 0, 2},
		{7, 2, 0, 2},
		{8, 8, 1, 1},
		{20, 0, 2, 1},
	}
	for _, c := range cases {
		ft, n := SectorTracks(geom, c.first, c.count)
		if ft != c.wantTrack || n != c.wantN {
			t.Fatalf("SectorTracks(%d,%d) = %d,%d want %d,%d",
				c.first, c.count, ft, n, c.wantTrack, c.wantN)
		}
	}
}

func TestFormSets(t *testing.T) {
	platters := []media.PlatterID{5, 3, 1, 2, 4, 0, 6}
	sets := FormSets(platters, 3)
	if len(sets) != 3 {
		t.Fatalf("sets = %d", len(sets))
	}
	if sets[0][0] != 0 || sets[0][2] != 2 {
		t.Fatalf("first set = %v (should be sorted, consecutive)", sets[0])
	}
	if len(sets[2]) != 1 {
		t.Fatalf("last set = %v", sets[2])
	}
}
