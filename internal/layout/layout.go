// Package layout implements Silica's data layout and management (§6):
// assignment of files to platters (packing by account and arrival,
// sharding large files), placement of files within a platter along the
// serpentine sector order with interleaved network-coding redundancy,
// partitioning of platters into platter-sets, and blast-zone-aware
// placement of platter-sets across the library's storage racks —
// including the Table 1 storage-rack minimums.
//
// The paper derives its rack minimums with a binary integer program it
// explicitly omits ("for brevity"). We therefore use a constraint set
// chosen to reproduce the published results exactly: (i) at most one
// platter of a set per blast zone (one shelf of one rack), (ii)
// vertical separation of at least 4 shelves between same-set platters
// in one rack (a failed shuttle spans two rails and obstructs its
// neighbourhood), and (iii) at most 11 same-set platters in any 4
// consecutive storage racks (the roam radius of a failed shuttle's
// rescue). Under these, 12+3 sets need 6 racks, 16+3 need 7, 24+3
// need 10 — Table 1's exact figures.
package layout

import (
	"fmt"
	"sort"

	"silica/internal/geometry"
	"silica/internal/media"
	"silica/internal/metadata"
	"silica/internal/staging"
)

// Placement constraints (see package comment).
const (
	// MinVerticalSep is the minimum shelf distance between two
	// same-set platters within one rack.
	MinVerticalSep = 4
	// WindowRacks / WindowCap: at most WindowCap same-set platters in
	// any WindowRacks consecutive storage racks.
	WindowRacks = 4
	WindowCap   = 11
	// MinLibraryRacks: "based on our design, a library needs at least
	// six storage racks" (§6).
	MinLibraryRacks = 6
)

// WriteOverhead is Table 1's "redundancy overhead at write drive":
// redundant platters over information platters.
func WriteOverhead(info, red int) float64 {
	return float64(red) / float64(info)
}

// maxPerRack is the per-rack cap implied by MinVerticalSep with
// shelvesPerRack shelves (e.g. shelves 0, 4, 8 for 10 shelves → 3).
func maxPerRack(shelvesPerRack int) int {
	return (shelvesPerRack-1)/MinVerticalSep + 1
}

// rackCapacity computes the maximum same-set platters placeable in
// `racks` storage racks under the per-rack and window constraints,
// via dynamic programming over the last WindowRacks-1 rack counts.
func rackCapacity(racks, shelvesPerRack int) int {
	perRack := maxPerRack(shelvesPerRack)
	if racks <= 0 {
		return 0
	}
	// State: counts of the last up-to-3 racks, encoded base
	// (perRack+1). Value: best total so far.
	type state struct{ a, b, c int } // previous three rack counts
	best := map[state]int{{0, 0, 0}: 0}
	for r := 0; r < racks; r++ {
		next := make(map[state]int, len(best))
		for st, tot := range best {
			for x := 0; x <= perRack; x++ {
				if st.a+st.b+st.c+x > WindowCap {
					continue
				}
				ns := state{st.b, st.c, x}
				if v, ok := next[ns]; !ok || tot+x > v {
					next[ns] = tot + x
				}
			}
		}
		best = next
	}
	m := 0
	for _, v := range best {
		if v > m {
			m = v
		}
	}
	return m
}

// MinStorageRacks reproduces Table 1: the minimum storage racks a
// library needs to host platter-sets of the given size, with
// shelvesPerRack shelves (the paper's prototype has 10).
func MinStorageRacks(setSize, shelvesPerRack int) int {
	for racks := 1; ; racks++ {
		if rackCapacity(racks, shelvesPerRack) >= setSize {
			if racks < MinLibraryRacks {
				return MinLibraryRacks
			}
			return racks
		}
	}
}

// Placer assigns platter-set members to storage slots, enforcing the
// blast-zone constraints and preferring the least-occupied areas (§6).
type Placer struct {
	layout   *geometry.Layout
	slotUsed map[geometry.SlotAddr]bool
	zoneLoad map[geometry.BlastZone]int // platters per zone (any set)
}

// NewPlacer builds a placer over a library floor plan.
func NewPlacer(l *geometry.Layout) *Placer {
	return &Placer{
		layout:   l,
		slotUsed: make(map[geometry.SlotAddr]bool),
		zoneLoad: make(map[geometry.BlastZone]int),
	}
}

// Occupied reports the number of slots placed so far.
func (p *Placer) Occupied() int { return len(p.slotUsed) }

// PlaceSet chooses home slots for one platter-set of n members such
// that no two members share a blast zone, same-rack members are at
// least MinVerticalSep shelves apart, and any WindowRacks consecutive
// racks hold at most WindowCap members. Among feasible slots it
// prefers the least-occupied zones, spreading load across the library.
func (p *Placer) PlaceSet(n int) ([]geometry.SlotAddr, error) {
	storage := p.layout.StorageRacks()
	if cap := rackCapacity(len(storage), p.layout.ShelvesPerRack); n > cap {
		return nil, fmt.Errorf("layout: set of %d exceeds library capacity %d (need %d storage racks)",
			n, cap, MinStorageRacks(n, p.layout.ShelvesPerRack))
	}
	// rackIdx position within the storage sequence (for windows).
	rackSeq := make(map[int]int, len(storage))
	for i, r := range storage {
		rackSeq[r] = i
	}
	perRackShelves := make(map[int][]int) // rack -> shelves used by this set
	perSeqCount := make([]int, len(storage))
	var chosen []geometry.SlotAddr

	for len(chosen) < n {
		best := geometry.SlotAddr{Rack: -1}
		bestCap := -1
		bestLoad := 1 << 30
		for _, rack := range storage {
			seq := rackSeq[rack]
			// Window constraint.
			ok := true
			for w := seq - WindowRacks + 1; w <= seq; w++ {
				if w < 0 || w+WindowRacks > len(storage) {
					continue
				}
				sum := 1
				for k := w; k < w+WindowRacks; k++ {
					sum += perSeqCount[k]
				}
				if sum > WindowCap {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for shelf := 0; shelf < p.layout.ShelvesPerRack; shelf++ {
				// Vertical separation within the rack.
				sepOK := true
				for _, used := range perRackShelves[rack] {
					d := shelf - used
					if d < 0 {
						d = -d
					}
					if d < MinVerticalSep {
						sepOK = false
						break
					}
				}
				if !sepOK {
					continue
				}
				zone := geometry.BlastZone{Rack: rack, Shelf: shelf}
				slot, found := p.freeSlotInZone(zone)
				if !found {
					continue
				}
				// Primary criterion: don't strand rack capacity — a
				// shelf choice that leaves more future same-set room
				// in this rack wins; zone load breaks ties so sets
				// spread over the least-occupied areas (§6).
				capAfter := shelfChainCapacity(append(append([]int(nil),
					perRackShelves[rack]...), shelf), p.layout.ShelvesPerRack)
				load := p.zoneLoad[zone]
				if capAfter > bestCap || (capAfter == bestCap && load < bestLoad) {
					bestCap = capAfter
					bestLoad = load
					best = slot
				}
			}
		}
		if best.Rack < 0 {
			return nil, fmt.Errorf("layout: no feasible slot for member %d of %d (library too full)", len(chosen)+1, n)
		}
		p.slotUsed[best] = true
		zone := geometry.SlotZone(best)
		p.zoneLoad[zone]++
		perRackShelves[best.Rack] = append(perRackShelves[best.Rack], best.Shelf)
		perSeqCount[rackSeq[best.Rack]]++
		chosen = append(chosen, best)
	}
	return chosen, nil
}

// shelfChainCapacity reports how many same-set platters a rack can
// ultimately hold given the shelves already used: the used shelves
// plus the largest extension respecting MinVerticalSep (greedy
// ascending scan, optimal on a line).
func shelfChainCapacity(used []int, shelves int) int {
	sort.Ints(used)
	count := len(used)
	occupied := append([]int(nil), used...)
	for s := 0; s < shelves; s++ {
		ok := true
		for _, u := range occupied {
			d := s - u
			if d < 0 {
				d = -d
			}
			if d < MinVerticalSep {
				ok = false
				break
			}
		}
		if ok {
			occupied = append(occupied, s)
			count++
		}
	}
	return count
}

func (p *Placer) freeSlotInZone(z geometry.BlastZone) (geometry.SlotAddr, bool) {
	for s := 0; s < p.layout.SlotsPerShelf; s++ {
		a := geometry.SlotAddr{Rack: z.Rack, Shelf: z.Shelf, Slot: s}
		if !p.slotUsed[a] {
			return a, true
		}
	}
	return geometry.SlotAddr{}, false
}

// ValidateSet checks the §6 invariant for an existing placement: no
// two members of a set share a blast zone.
func ValidateSet(slots []geometry.SlotAddr) error {
	seen := make(map[geometry.BlastZone]int, len(slots))
	for i, s := range slots {
		z := geometry.SlotZone(s)
		if j, dup := seen[z]; dup {
			return fmt.Errorf("layout: members %d and %d share blast zone %+v", j, i, z)
		}
		seen[z] = i
	}
	return nil
}

// Placement locates one file shard inside a platter plan.
type Placement struct {
	Key         metadata.FileKey
	Version     int
	Shard       int
	FirstSector int // linear information-sector position
	SectorCount int
	Bytes       int64
}

// PlatterPlan is the content of one information platter to be written.
type PlatterPlan struct {
	Entries     []Placement
	SectorsUsed int
}

// AssignFiles packs a batch of staged files into platter plans (§6):
// files are laid down in batch order (the staging tier already groups
// by account and arrival) along the serpentine information-sector
// order; files larger than shardSectors split into shards on distinct
// platters to parallelize large reads.
func AssignFiles(batch []*staging.File, geom media.Geometry, shardSectors int) []*PlatterPlan {
	if shardSectors < 1 {
		shardSectors = geom.InfoSectorsPerTrack * 100
	}
	platterInfoSectors := geom.InfoTracksPerPlatter() * geom.InfoSectorsPerTrack
	if shardSectors > platterInfoSectors {
		shardSectors = platterInfoSectors
	}
	var plans []*PlatterPlan
	cur := &PlatterPlan{}
	plans = append(plans, cur)
	for _, f := range batch {
		sectors := int((f.Size + int64(geom.SectorPayloadBytes) - 1) / int64(geom.SectorPayloadBytes))
		if sectors < 1 {
			sectors = 1
		}
		remaining := sectors
		shard := 0
		bytesLeft := f.Size
		for remaining > 0 {
			take := remaining
			if take > shardSectors {
				take = shardSectors
			}
			// Shards of one file go to distinct platters; open a new
			// plan when the current one is full or already holds an
			// earlier shard of this file.
			if cur.SectorsUsed+take > platterInfoSectors || (shard > 0 && planHolds(cur, f)) {
				cur = &PlatterPlan{}
				plans = append(plans, cur)
			}
			b := int64(take) * int64(geom.SectorPayloadBytes)
			if b > bytesLeft {
				b = bytesLeft
			}
			cur.Entries = append(cur.Entries, Placement{
				Key:         f.Key,
				Version:     f.Version,
				Shard:       shard,
				FirstSector: cur.SectorsUsed,
				SectorCount: take,
				Bytes:       b,
			})
			cur.SectorsUsed += take
			remaining -= take
			bytesLeft -= b
			shard++
		}
	}
	// Drop a trailing empty plan.
	if len(plans) > 0 && plans[len(plans)-1].SectorsUsed == 0 {
		plans = plans[:len(plans)-1]
	}
	return plans
}

func planHolds(p *PlatterPlan, f *staging.File) bool {
	for _, e := range p.Entries {
		if e.Key == f.Key && e.Version == f.Version {
			return true
		}
	}
	return false
}

// SectorTracks reports the track span [first, last] touched by an
// information-sector extent, used to build read requests: track =
// infoSector / InfoSectorsPerTrack.
func SectorTracks(geom media.Geometry, firstSector, count int) (firstTrack, trackCount int) {
	if count < 1 {
		count = 1
	}
	first := firstSector / geom.InfoSectorsPerTrack
	last := (firstSector + count - 1) / geom.InfoSectorsPerTrack
	return first, last - first + 1
}

// FormSets partitions information platters into platter-sets of
// setInfo members, grouping consecutively (the write pipeline already
// orders platters by content locality): platters likely to be read
// together share a set, streamlining recovery travel (§6).
func FormSets(platters []media.PlatterID, setInfo int) [][]media.PlatterID {
	sorted := append([]media.PlatterID(nil), platters...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sets [][]media.PlatterID
	for len(sorted) > 0 {
		n := setInfo
		if n > len(sorted) {
			n = len(sorted)
		}
		sets = append(sets, sorted[:n])
		sorted = sorted[n:]
	}
	return sets
}
