// Datacenter-replay: drive the library digital twin with a synthetic
// 12-hour cloud-archival read trace (the §7.2 methodology) and report
// the numbers an operator would watch: tail completion time versus the
// 15-hour SLO, drive utilization with verification fast-switching, and
// shuttle congestion/energy.
package main

import (
	"flag"
	"fmt"
	"log"

	"silica/internal/core"
	"silica/internal/stats"
	"silica/internal/workload"
)

func main() {
	profile := flag.String("profile", "iops", "trace profile: typical, iops, volume")
	shuttles := flag.Int("shuttles", 20, "shuttles in the library")
	mbps := flag.Float64("mbps", 60, "per-drive read throughput, MB/s")
	hours := flag.Float64("hours", 12, "core trace duration")
	flag.Parse()

	var p workload.Profile
	switch *profile {
	case "typical":
		p = workload.Typical
	case "iops":
		p = workload.IOPS
	case "volume":
		p = workload.Volume
	default:
		log.Fatalf("unknown profile %q", *profile)
	}

	cfg := core.DefaultConfig()
	cfg.Library.Shuttles = *shuttles
	cfg.Library.DriveThroughput = *mbps * 1e6
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	tr, err := workload.Generate(workload.TraceConfig{
		Profile:       p,
		Duration:      *hours * 3600,
		Warmup:        *hours * 300,
		Cooldown:      *hours * 300,
		Platters:      cfg.Library.Platters,
		TracksPerFile: workload.TracksFor(10e6),
		TrackBytes:    10e6,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %s trace: %d requests over %.0f h (20 drives @ %.0f MB/s, %d shuttles)\n",
		p, len(tr.Requests), *hours, *mbps, *shuttles)

	sample := sys.SimulateTrace(tr)
	lib := sys.Library

	fmt.Printf("\ncompletion time (core interval, %d requests):\n", sample.N())
	fmt.Printf("  median %s   p99 %s   p99.9 %s   max %s\n",
		stats.FormatDuration(sample.Median()), stats.FormatDuration(sample.Quantile(0.99)),
		stats.FormatDuration(sample.P999()), stats.FormatDuration(sample.Max()))
	slo := 15 * 3600.0
	if sample.P999() <= slo {
		fmt.Printf("  SLO: PASS (tail %.1fx under the 15 h objective)\n", slo/sample.P999())
	} else {
		fmt.Printf("  SLO: MISS by %s\n", stats.FormatDuration(sample.P999()-slo))
	}

	u := lib.DriveUtilization(lib.Sim().Now())
	fmt.Printf("\ndrive utilization: %.1f%% (read %.1f%%, verify %.1f%%, mount %.1f%%, switch %.1f%%)\n",
		100*u.Utilization(), 100*u.Read, 100*u.Verify, 100*u.Mount, 100*u.Switch)

	sh := lib.ShuttleStats()
	fmt.Printf("shuttles: %d platter ops, %d stolen, congestion %.1f%% of travel, %.0f energy units/op\n",
		sh.PlatterOps, sh.StolenOps, 100*sh.CongestionOverhead(), sh.EnergyPerOp())
	fmt.Printf("bytes served: %s\n", stats.FormatBytes(float64(lib.Metrics().BytesRead)))
}
