// Failure-recovery: exercise the availability story end to end, at
// both layers of the reproduction.
//
// Data plane: fill a platter-set with real bytes, fail an information
// platter, and read its contents back through cross-platter network
// coding (§5) — every byte reconstructed from linear combinations of
// the surviving members.
//
// Control plane: in the library digital twin, fail 5% of platters and
// measure the tail-completion impact of the 16x recovery read
// amplification (§7.6), plus a blast-zone failure (§6) taking out one
// shelf of one rack.
package main

import (
	"bytes"
	"fmt"
	"log"

	"silica/internal/controller"
	"silica/internal/core"
	"silica/internal/geometry"
	"silica/internal/library"
	"silica/internal/media"
	"silica/internal/stats"
	"silica/internal/workload"
)

func main() {
	dataPlane()
	controlPlane()
}

func dataPlane() {
	fmt.Println("=== Data plane: cross-platter reconstruction of real bytes ===")
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	svc := sys.Service
	cfg := core.DefaultConfig().Service

	// Fill one platter per file so a set of SetInfo platters completes.
	platterBytes := int(cfg.Geom.PlatterUserBytes())
	originals := map[string][]byte{}
	for i := 0; i < cfg.SetInfo; i++ {
		name := fmt.Sprintf("archive-%d", i)
		data := bytes.Repeat([]byte{byte('A' + i)}, platterBytes/2)
		originals[name] = data
		if _, err := svc.Put("lab", name, data); err != nil {
			log.Fatal(err)
		}
		if err := svc.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	st := svc.Stats()
	fmt.Printf("wrote %d information platters; set completed with %d redundancy platters\n",
		st.PlattersWritten, st.RedundancyPlatters)

	v, err := svc.Metadata().Get(struct{ Account, Name string }{"lab", "archive-0"})
	if err != nil {
		log.Fatal(err)
	}
	failed := media.PlatterID(v.Extents[0].Platter)
	if err := svc.FailPlatter(failed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platter %d failed (shuttle collision, say)\n", failed)

	got, err := svc.Get("lab", "archive-0")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, originals["archive-0"]) {
		log.Fatal("reconstructed bytes differ!")
	}
	fmt.Printf("archive-0 reconstructed from set peers: %d bytes, %d sector recoveries\n\n",
		len(got), svc.Stats().PlatterRecovers)
}

func controlPlane() {
	fmt.Println("=== Control plane: tail impact of platter unavailability ===")
	run := func(unavailFrac float64) (*stats.Sample, *library.Library) {
		cfg := library.DefaultConfig()
		cfg.Platters = 2000
		cfg.Seed = 7
		lib, err := library.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		lib.MarkUnavailable(unavailFrac)
		tr, err := workload.Generate(workload.TraceConfig{
			Profile:       workload.IOPS,
			Duration:      4 * 3600,
			Warmup:        1800,
			Cooldown:      1800,
			Platters:      cfg.Platters,
			TracksPerFile: workload.TracksFor(10e6),
			TrackBytes:    10e6,
			Seed:          7,
		})
		if err != nil {
			log.Fatal(err)
		}
		core := stats.NewSample()
		for _, r := range tr.Requests {
			if tr.InCore(r) {
				r := r
				r.Done = func(t float64) { core.Add(t - r.Arrival) }
			}
		}
		reqs := make([]*controller.Request, len(tr.Requests))
		copy(reqs, tr.Requests)
		lib.RunTrace(reqs, tr.CoreEnd)
		return core, lib
	}

	healthy, _ := run(0)
	degraded, lib := run(0.05)
	fmt.Printf("healthy library:   p99.9 completion %s\n", stats.FormatDuration(healthy.P999()))
	fmt.Printf("5%% platters down:  p99.9 completion %s (%d recovery reads for %d affected requests)\n",
		stats.FormatDuration(degraded.P999()),
		lib.Metrics().InternalReads, lib.Metrics().InternalReads/16)

	// Blast-zone failure: one shelf of one rack becomes unreachable.
	cfg := library.DefaultConfig()
	cfg.Platters = 2000
	lib2, err := library.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	zone := geometry.BlastZone{Rack: 3, Shelf: 4}
	n := lib2.MarkZoneUnavailable(zone)
	fmt.Printf("blast zone rack %d shelf %d: %d platters unreachable — at most one per platter-set by §6 placement\n",
		zone.Rack, zone.Shelf, n)
}
