// Quickstart: store, read, and crypto-shred archive files through the
// Silica public API. Data flows through the real pipeline: AES
// envelope encryption, LDPC sector coding, 16-symbol voxel modulation,
// a noisy polarization-microscopy channel model, soft demapping, and
// three levels of network-coding redundancy — then verification before
// the staged copy is released, exactly as §3.1 prescribes.
package main

import (
	"bytes"
	"fmt"
	"log"

	"silica/internal/core"
)

func main() {
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 1. Put: encrypt + stage.
	manuscript := bytes.Repeat([]byte("In the beginning was the word. "), 200)
	if _, err := sys.Put("museum", "manuscript.txt", manuscript); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged manuscript.txt (%d bytes)\n", len(manuscript))

	// 2. Flush: batch -> platter layout -> encode -> write -> verify.
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	st := sys.Service.Stats()
	fmt.Printf("flushed to glass: %d platter(s), %d sectors written, verify margin %.2f\n",
		st.PlattersWritten, st.SectorsWritten, st.MinVerifyMargin)

	// 3. Get: decode through the noisy read channel.
	got, err := sys.Get("museum", "manuscript.txt")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, manuscript) {
		log.Fatal("read-back mismatch")
	}
	fmt.Printf("read back %d bytes, byte-for-byte identical\n", len(got))

	// 4. Overwrite: WORM media versions logically (§3).
	revised := append(bytes.Clone(manuscript), []byte("-- 2nd edition")...)
	if _, err := sys.Put("museum", "manuscript.txt", revised); err != nil {
		log.Fatal(err)
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	got, _ = sys.Get("museum", "manuscript.txt")
	fmt.Printf("after overwrite the latest version wins (%d bytes)\n", len(got))

	// 5. Delete: crypto-shredding. The voxels remain in the glass
	// forever; the key does not.
	if err := sys.Delete("museum", "manuscript.txt"); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Get("museum", "manuscript.txt"); err == nil {
		log.Fatal("deleted file still readable")
	}
	fmt.Println("deleted: pointers removed, key shredded, ciphertext unreadable")
}
