// Layout-planner: size a Silica deployment the way §6 does. Given a
// yearly ingress volume, pick a platter-set shape, compute the Table 1
// write-overhead/rack trade-off, verify the durability budget, and
// place the first platter-sets into a floor plan with the blast-zone
// constraints.
package main

import (
	"flag"
	"fmt"
	"log"

	"silica/internal/geometry"
	"silica/internal/layout"
	"silica/internal/media"
	"silica/internal/nc"
	"silica/internal/stats"
)

func main() {
	ingressPB := flag.Float64("ingress-pb", 2.0, "yearly ingress, petabytes")
	flag.Parse()

	geom := media.DefaultGeometry()
	perPlatter := float64(geom.PlatterUserBytes())
	plattersPerYear := int(*ingressPB*1e15/perPlatter) + 1
	fmt.Printf("planning for %.1f PB/year = %d platters/year (%.1f TB user data each)\n\n",
		*ingressPB, plattersPerYear, perPlatter/1e12)

	fmt.Println("platter-set options (Table 1):")
	fmt.Printf("  %-6s %-16s %-14s %s\n", "I+R", "write overhead", "storage racks", "set-loss p (platter p=1e-3)")
	for _, c := range [][2]int{{12, 3}, {16, 3}, {24, 3}} {
		loss := nc.GroupLossProb(nc.LevelParams{I: c[0], R: c[1]}, 1e-3)
		fmt.Printf("  %-6s %-16s %-14d %.2e\n",
			fmt.Sprintf("%d+%d", c[0], c[1]),
			fmt.Sprintf("%.1f%%", 100*layout.WriteOverhead(c[0], c[1])),
			layout.MinStorageRacks(c[0]+c[1], 10), loss)
	}

	fmt.Println("\ndurability budget per level (§5/§6):")
	h, err := nc.NewHierarchy(nc.Cauchy, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sector LDPC failure (prototype): 1e-3\n")
	fmt.Printf("  track decode failure at %d+%d:     %.2e\n",
		h.WithinTrack.I, h.WithinTrack.R, nc.TrackDecodeFailureProb(nc.DefaultWithinTrack, 1e-3))
	fmt.Printf("  total in-platter overhead:        %.1f%%\n", 100*h.TotalInPlatterOverhead())

	// Place the paper's chosen 16+3 sets.
	const info, red = 16, 3
	racks := layout.MinStorageRacks(info+red, 10)
	cfg := geometry.DefaultConfig()
	if racks > cfg.StorageRacks {
		cfg.StorageRacks = racks
	}
	l, err := geometry.NewLayout(cfg)
	if err != nil {
		log.Fatal(err)
	}
	placer := layout.NewPlacer(l)
	setsPlaced := 0
	for {
		slots, err := placer.PlaceSet(info + red)
		if err != nil {
			break // library full for this demo's constraints
		}
		if err := layout.ValidateSet(slots); err != nil {
			log.Fatal(err)
		}
		setsPlaced++
		if setsPlaced >= 20 {
			break
		}
	}
	libCapacity := float64(l.NumSlots()) * perPlatter * float64(info) / float64(info+red)
	fmt.Printf("\nMDU floor plan: %d racks (%d storage), %d drives, %d slots -> %s user capacity\n",
		len(l.Racks), cfg.StorageRacks, l.NumDrives(), l.NumSlots(),
		stats.FormatBytes(libCapacity))
	fmt.Printf("placed %d platter-sets of %d+%d with disjoint blast zones (%d slots)\n",
		setsPlaced, info, red, placer.Occupied())
	librariesNeeded := float64(plattersPerYear) * float64(info+red) / float64(info) / float64(l.NumSlots())
	fmt.Printf("ingress fills %.2f libraries per year\n", librariesNeeded)
}
