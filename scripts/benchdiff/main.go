// Command benchdiff compares two benchmark captures — raw `go test
// -json` event streams, as `make bench` writes into BENCH_codec.json —
// and prints per-benchmark ns/op and MB/s deltas. It is the trend
// check behind `make bench-diff`: run a fresh capture, diff it against
// the committed baseline, and eyeball the movement before refreshing
// the baseline.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//
// Benchmark names are matched with the trailing -GOMAXPROCS suffix
// stripped, so captures from different core counts line up (per-core
// scaling is carried by the benchmarks' own MB/s/core metric, which is
// diffed like any other unit). The exit status is always zero when both
// files parse: benchdiff reports, it does not gate.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's parsed metrics, keyed by unit ("ns/op",
// "MB/s", "allocs/op", "workers", ...). A name that runs several times
// in one capture (e.g. sub-benchmarks re-run under -count) keeps the
// last result.
type result map[string]float64

var procSuffix = regexp.MustCompile(`-\d+$`)

// parseFile extracts benchmark result lines from a `go test -json`
// stream, looking for lines of the form
//
//	BenchmarkName-8   1234   56.7 ns/op   8.9 MB/s   0 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs. The test
// runner splits one logical result line across several Output events
// (the name lands in its own unterminated event, the numbers in the
// next), so events are reassembled per package and split on real
// newlines before parsing.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	take := func(line string) {
		if name, r, ok := parseBenchLine(line); ok {
			out[name] = r
		}
	}
	bufs := make(map[string]string) // package -> pending partial line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Text()
		var ev struct{ Package, Output string }
		if json.Unmarshal([]byte(raw), &ev) != nil || ev.Output == "" {
			// Tolerate plain `go test -bench` output too, so a capture
			// made without -json still diffs.
			take(raw)
			continue
		}
		pend := bufs[ev.Package] + ev.Output
		for {
			i := strings.IndexByte(pend, '\n')
			if i < 0 {
				break
			}
			take(pend[:i])
			pend = pend[i+1:]
		}
		bufs[ev.Package] = pend
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, pend := range bufs {
		take(pend)
	}
	return out, nil
}

func parseBenchLine(s string) (string, result, bool) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(s)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	r := make(result)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		r[fields[i+1]] = v
	}
	return procSuffix.ReplaceAllString(fields[0], ""), r, true
}

// delta formats the old→new movement of one unit as
// "old → new unit (+pct)"; the percentage is always new relative to
// old, so for ns/op negative is faster and for MB/s positive is.
func delta(prev, cur result, unit string) string {
	o, okO := prev[unit]
	n, okN := cur[unit]
	switch {
	case !okO && !okN:
		return "-"
	case !okO:
		return fmt.Sprintf("(new) %.4g %s", n, unit)
	case !okN:
		return fmt.Sprintf("%.4g %s (gone)", o, unit)
	}
	pct := "n/a"
	if o != 0 {
		pct = fmt.Sprintf("%+.1f%%", 100*(n-o)/o)
	}
	return fmt.Sprintf("%.4g → %.4g %s (%s)", o, n, unit, pct)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchdiff OLD.json NEW.json\n")
		os.Exit(2)
	}
	old, err := parseFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	cur, err := parseFile(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	names := make(map[string]bool, len(old)+len(cur))
	for n := range old {
		names[n] = true
	}
	for n := range cur {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	fmt.Printf("benchdiff %s → %s\n", os.Args[1], os.Args[2])
	for _, name := range sorted {
		o, okO := old[name]
		n, okN := cur[name]
		switch {
		case !okO:
			fmt.Printf("%-60s only in %s\n", name, os.Args[2])
			continue
		case !okN:
			fmt.Printf("%-60s only in %s\n", name, os.Args[1])
			continue
		}
		fmt.Printf("%-60s %s\n", name, delta(o, n, "ns/op"))
		// Secondary units, diffed when either side carries them.
		units := make(map[string]bool)
		for u := range o {
			units[u] = true
		}
		for u := range n {
			units[u] = true
		}
		delete(units, "ns/op")
		rest := make([]string, 0, len(units))
		for u := range units {
			rest = append(rest, u)
		}
		sort.Strings(rest)
		for _, u := range rest {
			// Skip units identical on both sides to keep the report
			// signal-dense (B/op 0 → 0 says nothing).
			if ov, nv := o[u], n[u]; math.Abs(ov-nv) < 1e-12 {
				continue
			}
			fmt.Printf("%-60s %s\n", "", delta(o, n, u))
		}
	}
}
