# Tier 1: the fast correctness bar (also what CI gates on).
# Tier 2: race detection plus a gateway load smoke under deliberate
#         overload — must report zero lost/corrupted and nonzero
#         rejections.

GO ?= go

.PHONY: all tier1 tier2 build test vet race smoke repair-smoke bench clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# 32 closed-loop clients against a deliberately small staging tier:
# exercises admission control (429s), the flush scheduler, and the
# byte-exact verification pass. silica-load exits nonzero on any lost
# or corrupted object.
smoke:
	$(GO) run ./cmd/silica-load -clients 32 -ops 6 -object-bytes 1024 \
		-staging-cap 40000 -retries 20

# Self-healing smoke: kill a platter-set member mid-run; the
# background scrubber must detect it, the rebuilder must write a
# verified replacement, and the byte-exact audit must find every
# committed object intact. silica-load exits nonzero on any lost or
# corrupted object or if the rebuild never completes.
repair-smoke:
	$(GO) run ./cmd/silica-load -clients 8 -ops 32 -read-frac 0.25 \
		-object-bytes 2048 -platter-tracks 9 -kill-platter

tier2: vet race smoke repair-smoke

# Codec benchmarks: GF(256) kernels, per-sector encode/decode, and the
# parallel burn/flush paths at workers=1 vs workers=GOMAXPROCS. Raw
# `go test -json` events land in BENCH_codec.json for trend tracking.
bench:
	$(GO) test -json -run '^$$' \
		-bench 'EncodeSector|DecodeSector|GF256MulAddVec|BurnPlatter|FlushParallel' \
		-benchmem ./internal/gf256/ ./internal/ldpc/ ./internal/service/ \
		> BENCH_codec.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_codec.json \
		| sed -e 's/"Output":"//' -e 's/\\n$$//' -e 's/\\t/\t/g'

clean:
	$(GO) clean ./...
