# Tier 1: the fast correctness bar (also what CI gates on).
# Tier 2: race detection plus a gateway load smoke under deliberate
#         overload — must report zero lost/corrupted and nonzero
#         rejections.

GO ?= go

.PHONY: all tier1 tier2 build test vet race smoke clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# 32 closed-loop clients against a deliberately small staging tier:
# exercises admission control (429s), the flush scheduler, and the
# byte-exact verification pass. silica-load exits nonzero on any lost
# or corrupted object.
smoke:
	$(GO) run ./cmd/silica-load -clients 32 -ops 6 -object-bytes 1024 \
		-staging-cap 40000 -retries 20

tier2: vet race smoke

clean:
	$(GO) clean ./...
