# Tier 1: the fast correctness bar (also what CI gates on).
# Tier 2: race detection plus a gateway load smoke under deliberate
#         overload — must report zero lost/corrupted and nonzero
#         rejections.

GO ?= go

.PHONY: all tier1 tier2 build test vet race smoke repair-smoke obs-smoke crash-smoke twin-smoke cluster-smoke cluster-crash bench bench-diff clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# 32 closed-loop clients against a deliberately small staging tier:
# exercises admission control (429s), the flush scheduler, and the
# byte-exact verification pass. silica-load exits nonzero on any lost
# or corrupted object.
smoke:
	$(GO) run ./cmd/silica-load -clients 32 -ops 6 -object-bytes 1024 \
		-staging-cap 40000 -retries 20

# Self-healing smoke: kill a platter-set member mid-run; the
# background scrubber must detect it, the rebuilder must write a
# verified replacement, and the byte-exact audit must find every
# committed object intact. silica-load exits nonzero on any lost or
# corrupted object or if the rebuild never completes.
repair-smoke:
	$(GO) run ./cmd/silica-load -clients 8 -ops 32 -read-frac 0.25 \
		-object-bytes 2048 -platter-tracks 9 -kill-platter

tier2: vet race smoke repair-smoke

# Observability smoke: start a real silicad, push one object through
# it, scrape /metrics with silicactl, and check the exposition carries
# every subsystem's families (gateway, staging, codec, flush, repair).
OBS_URL := http://127.0.0.1:7171
obs-smoke:
	$(GO) build -o /tmp/silica-obs-smoke/ ./cmd/silicad ./cmd/silicactl
	/tmp/silica-obs-smoke/silicad -listen 127.0.0.1:7171 & \
	  SILICAD_PID=$$!; \
	  trap "kill $$SILICAD_PID 2>/dev/null" EXIT; \
	  for i in $$(seq 1 50); do \
	    curl -sf $(OBS_URL)/v1/healthz >/dev/null && break; sleep 0.1; \
	  done; \
	  curl -sf -X PUT --data-binary smoke $(OBS_URL)/v1/objects/acct/obj >/dev/null; \
	  curl -sf -X POST $(OBS_URL)/v1/flush >/dev/null; \
	  /tmp/silica-obs-smoke/silicactl metrics -url $(OBS_URL) > /tmp/silica-obs-smoke/metrics.txt; \
	  /tmp/silica-obs-smoke/silicactl top -url $(OBS_URL) -n 1; \
	  for fam in silica_gateway_queue_depth silica_gateway_request_seconds \
	             silica_staging_used_bytes silica_codec_jobs_total \
	             silica_codec_encode_seconds silica_codec_decode_seconds \
	             silica_codec_sectors_total silica_codec_sectors_per_second \
	             silica_repair_scrubs_total silica_flush_phase_seconds; do \
	    grep -q "^# TYPE $$fam " /tmp/silica-obs-smoke/metrics.txt \
	      || { echo "missing metric family: $$fam"; exit 1; }; \
	  done; \
	  echo "obs-smoke: all metric families present"

# Crash-recovery smoke: the durability contract under kill -9. Runs
# the in-process kill-point test (freeze the WAL mid-flush under
# concurrent load, tear the tail, recover byte-exact) and the
# subprocess test (build silicad, kill it at a platter publication via
# an armed fault rule, restart from -persist-dir, audit over HTTP).
crash-smoke:
	SILICA_CRASH_SMOKE=1 $(GO) test ./internal/gateway \
		-run 'TestCrashMidFlushRecovery|TestCrashSmokeSilicad' -v -timeout 600s

# Digital-twin smoke: drive Zipf-skewed load through an in-process
# gateway whose media touches are charged by the library twin, print
# the queue/mechanical/codec latency breakdown, and run the e2e test
# (byte identity vs direct, nonzero mechanical histograms, runtime
# policy switch over /v1/backend).
twin-smoke:
	$(GO) run ./cmd/silica-load -clients 8 -ops 24 -read-frac 0.6 \
		-object-bytes 2048 -platter-tracks 9 -zipf 1.2 \
		-backend twin -policy silica -twin-speedup 20000
	$(GO) test ./internal/gateway -run 'TestTwinE2E' -v -timeout 300s

# Multi-library smoke: shard the archive across three in-process
# libraries behind the consistent-hash router, destroy one entire
# library mid-run, rebuild a fresh member from the cross-library
# redundancy copies, and require the byte-exact audit to find every
# acknowledged object intact. Then kill -9 the router itself mid-run
# (-kill-router): its placement log freezes, a successor recovers the
# directory from -persist-dir/router, and the audit runs against the
# successor. Then run the package's acceptance test.
cluster-smoke:
	$(GO) run ./cmd/silica-load -cluster 3 -kill-library \
		-clients 16 -ops 12 -read-frac 0.35 -object-bytes 1536 -retries 12
	rm -rf /tmp/silica-cluster-smoke && \
	$(GO) run ./cmd/silica-load -cluster 3 -kill-router \
		-persist-dir /tmp/silica-cluster-smoke \
		-clients 16 -ops 12 -read-frac 0.35 -object-bytes 1536 -retries 12
	$(GO) test ./internal/cluster -run 'TestClusterKillLibraryE2E' -v -timeout 300s

# Router crash-recovery smoke: the cluster analogue of crash-smoke.
# In-process drills (armed kill points freezing the router log on a
# placement and on a delete, successor recovery, seed-mismatch
# refusal) plus the subprocess drill (silicad -cluster killed at a
# placement append via a fault rule, exit 137, restart from
# -persist-dir, byte-exact HTTP audit).
cluster-crash:
	SILICA_CRASH_SMOKE=1 $(GO) test ./internal/cluster \
		-run 'TestClusterRouter|TestClusterRestart|TestClusterSeedMismatch|TestCrashSmokeClusterRouter' \
		-v -timeout 600s

# Codec benchmarks: GF(256) kernels, the word-packed per-sector
# encode/decode (hard-decision fast path and the forced-BP soft path),
# and the parallel burn/flush paths at workers=1, 4, and GOMAXPROCS.
# Raw `go test -json` events land in BENCH_codec.json for trend
# tracking; the burn/flush rows carry `workers` and `MB/s/core` metrics
# so runs on different core counts compare per-core scaling directly.
bench:
	$(GO) test -json -run '^$$' \
		-bench 'EncodeSector|DecodeSector|GF256MulAddVec|BurnPlatter|FlushParallel|TwinRead' \
		-benchmem ./internal/gf256/ ./internal/ldpc/ ./internal/service/ ./internal/backend/ \
		> BENCH_codec.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_codec.json \
		| sed -e 's/"Output":"//' -e 's/\\n$$//' -e 's/\\t/\t/g'

# Benchmark trend check: capture a fresh run next to the committed
# baseline and print per-benchmark ns/op and MB/s movement. Report-only
# (CI runs it continue-on-error): refresh BENCH_codec.json via `make
# bench` when a shift is real and intended.
BENCH_NEW ?= /tmp/BENCH_new.json
bench-diff:
	$(GO) test -json -run '^$$' \
		-bench 'EncodeSector|DecodeSector|GF256MulAddVec|BurnPlatter|FlushParallel|TwinRead' \
		-benchmem ./internal/gf256/ ./internal/ldpc/ ./internal/service/ ./internal/backend/ \
		> $(BENCH_NEW)
	$(GO) run ./scripts/benchdiff BENCH_codec.json $(BENCH_NEW)

clean:
	$(GO) clean ./...
