// Package silica reproduces Project Silica (SOSP 2023): a cloud
// archival storage system on quartz glass. See README.md for the
// architecture, DESIGN.md for the system inventory and paper mapping,
// and EXPERIMENTS.md for the reproduced evaluation. The public entry
// point for applications is internal/core; bench_test.go in this
// directory regenerates every table and figure of the paper at reduced
// scale.
package silica
