// Command silica-sim runs one of the paper's experiments by name and
// prints its table.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"silica/internal/controller"
	"silica/internal/experiments"
	"silica/internal/library"
	"silica/internal/media"
	"silica/internal/stats"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id: fig1a fig1b fig1c fig2 fig3 table1 durability fig5a fig5b fig5c fig5d fig6 fig7a fig7b fig7c fig8 fig9, ablations, policy-live, or all")
	quick := flag.Bool("quick", false, "scaled-down traces (seconds per experiment)")
	seed := flag.Uint64("seed", 1, "root random seed")
	traceFile := flag.String("trace", "", "replay a silica-trace JSONL file instead of running experiments")
	shuttles := flag.Int("shuttles", 20, "shuttles (with -trace)")
	mbps := flag.Float64("mbps", 60, "per-drive MB/s (with -trace)")
	platters := flag.Int("platters", 4000, "library platters (with -trace)")
	flag.Parse()

	if *traceFile != "" {
		replay(*traceFile, *shuttles, *mbps, *platters, *seed)
		return
	}

	sc := experiments.FullScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	sc.Seed = *seed

	run := func(name string, f func() (fmt.Stringer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	wrap := func(v fmt.Stringer) (fmt.Stringer, error) { return v, nil }

	run("fig1a", func() (fmt.Stringer, error) { return wrap(experiments.Fig1a(sc.Seed)) })
	run("fig1b", func() (fmt.Stringer, error) { return wrap(experiments.Fig1b(200000, sc.Seed)) })
	run("fig1c", func() (fmt.Stringer, error) { return wrap(experiments.Fig1c(sc.Seed)) })
	run("fig2", func() (fmt.Stringer, error) { return wrap(experiments.Fig2(sc.Seed)) })
	run("fig3", func() (fmt.Stringer, error) { return wrap(experiments.Fig3(20000, sc.Seed)) })
	run("table1", func() (fmt.Stringer, error) { return wrap(experiments.Table1()) })
	run("durability", func() (fmt.Stringer, error) { return wrap(experiments.Durability()) })
	run("fig5a", func() (fmt.Stringer, error) { r, err := experiments.Fig5a(sc); return r, err })
	run("fig5b", func() (fmt.Stringer, error) { r, err := experiments.Fig5b(sc); return r, err })
	run("fig5c", func() (fmt.Stringer, error) { r, err := experiments.Fig5c(sc); return r, err })
	run("fig5d", func() (fmt.Stringer, error) { r, err := experiments.Fig5d(sc); return r, err })
	run("fig6", func() (fmt.Stringer, error) { r, err := experiments.Fig6(sc); return r, err })
	run("fig7a", func() (fmt.Stringer, error) { r, err := experiments.Fig7a(sc); return r, err })
	run("fig7b", func() (fmt.Stringer, error) { r, err := experiments.Fig7b(sc); return r, err })
	run("fig7c", func() (fmt.Stringer, error) { r, err := experiments.Fig7c(sc); return r, err })
	run("fig8", func() (fmt.Stringer, error) { r, err := experiments.Fig8(sc); return r, err })
	run("fig9", func() (fmt.Stringer, error) { r, err := experiments.Fig9(sc); return r, err })
	if *exp == "ablations" {
		run("ablations", func() (fmt.Stringer, error) { r, err := experiments.Ablations(sc); return r, err })
	}
	if *exp == "tape" {
		run("tape", func() (fmt.Stringer, error) { r, err := experiments.TapeVsSilica(sc); return r, err })
	}
	if *exp == "policy-live" {
		// Runs a real gateway + HTTP server per policy with the twin
		// backend — opt-in by name, like ablations.
		run("policy-live", func() (fmt.Stringer, error) {
			lcfg := experiments.DefaultPolicyLiveConfig()
			lcfg.Seed = sc.Seed
			r, err := experiments.PolicyComparisonLive(lcfg)
			return r, err
		})
	}
}

// jsonRequest mirrors silica-trace's output schema.
type jsonRequest struct {
	ID         int64   `json:"id"`
	Platter    int64   `json:"platter"`
	StartTrack int     `json:"start_track"`
	TrackCount int     `json:"track_count"`
	Bytes      int64   `json:"bytes"`
	Arrival    float64 `json:"arrival_sec"`
}

// replay drives a library with a trace file produced by silica-trace.
func replay(path string, shuttles int, mbps float64, platters int, seed uint64) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	var reqs []*controller.Request
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var jr jsonRequest
		if err := json.Unmarshal(sc.Bytes(), &jr); err != nil {
			fmt.Fprintf(os.Stderr, "bad trace line: %v\n", err)
			os.Exit(1)
		}
		reqs = append(reqs, &controller.Request{
			ID: controller.RequestID(jr.ID), Platter: media.PlatterID(jr.Platter % int64(platters)),
			StartTrack: jr.StartTrack, TrackCount: jr.TrackCount,
			Bytes: jr.Bytes, Arrival: jr.Arrival,
		})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := library.DefaultConfig()
	cfg.Shuttles = shuttles
	cfg.DriveThroughput = mbps * 1e6
	cfg.Platters = platters
	cfg.Seed = seed
	lib, err := library.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sample := stats.NewSample()
	for _, r := range reqs {
		r := r
		r.Done = func(t float64) { sample.Add(t - r.Arrival) }
	}
	lib.RunTrace(reqs, 0)
	u := lib.DriveUtilization(lib.Sim().Now())
	fmt.Printf("replayed %d requests: median %s, p99 %s, p99.9 %s; drive utilization %.1f%%\n",
		sample.N(), stats.FormatDuration(sample.Median()),
		stats.FormatDuration(sample.Quantile(0.99)), stats.FormatDuration(sample.P999()),
		100*u.Utilization())
}
