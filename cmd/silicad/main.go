// Command silicad runs the Silica archive gateway as an HTTP daemon:
// an in-memory glass archive behind admission control, per-class
// request queues, and a batched flush scheduler.
//
//	silicad -listen :7070 -staging-cap 1048576 -flush-age 2s
//
// API (see internal/gateway):
//
//	PUT    /v1/objects/{account}/{name}   store object
//	GET    /v1/objects/{account}/{name}   fetch object
//	DELETE /v1/objects/{account}/{name}   crypto-shred object
//	POST   /v1/flush                      force a staging drain
//	GET    /v1/stats                      counters, latencies, staging usage
//	GET    /v1/healthz                    liveness (503 "degraded" at reduced redundancy)
//	GET    /v1/health/platters            platter health registry + transition history
//	POST   /v1/repair/{platter}           fail a platter and rebuild it from its set
//	POST   /v1/faults                     arm fault-injection rules at runtime
//	GET    /v1/faults                     list armed rules and fire counts
//	DELETE /v1/faults                     disarm all fault rules
//	GET    /v1/cost                       §9 TCO comparison (tape/HDD/Silica)
//	GET    /v1/backend                    backend kind, policy, mechanical stats
//	POST   /v1/backend                    switch the twin's scheduling policy at runtime
//
// With -backend twin every media touch (burns, reads, scrub samples,
// rebuild member reads) is charged mechanical latency by a calibrated
// digital twin of a Silica library — drives, shuttles, mount and seek
// distributions — throttled to wall time by -twin-speedup. Bytes are
// identical to -backend direct; only timing differs.
//
// With -cluster N (or -peers url,url,...) the daemon serves the
// multi-library router instead of one gateway: the archive shards
// across N in-process library instances (or a fleet of peer silicads)
// on a deterministic consistent-hash ring, every write places a
// cross-library redundancy copy on the ring successor, and the
// object API above is unchanged. Router-only endpoints:
//
//	GET  /v1/cluster             ring ownership + per-library state
//	POST /v1/cluster/rebalance   reconcile placement now
//	POST /v1/cluster/drain       migrate a library's ranges off, close it
//
// With -persist-dir the daemon is durable: it recovers snapshot+WAL
// state from the directory on start, fsyncs the WAL before every
// acknowledgment, and snapshots on graceful shutdown. kill-mode fault
// rules (e.g. -fault kill@publish.platter:after=1,count=1) exit with
// code 137 at the chosen pipeline point for crash drills.
//
// Fault injection (-fault, repeatable) arms deterministic failure
// rules at startup, e.g.
//
//	silicad -fault op=media.write,mode=error,every=7,count=5 \
//	        -fault op=staging.reserve,mode=error,err=capacity,prob=0.05 \
//	        -fault-seed 42
//
// SIGINT/SIGTERM triggers graceful shutdown: admission stops, in-flight
// requests drain, and staging is flushed to glass before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"silica/internal/backend"
	"silica/internal/cluster"
	"silica/internal/faults"
	"silica/internal/gateway"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	var (
		listen        = flag.String("listen", ":7070", "HTTP listen address")
		writeWorkers  = flag.Int("write-workers", 4, "write worker pool size")
		readWorkers   = flag.Int("read-workers", 4, "read worker pool size")
		writeQueue    = flag.Int("write-queue", 64, "write queue depth")
		readQueue     = flag.Int("read-queue", 64, "read queue depth")
		stagingCap    = flag.Int64("staging-cap", 0, "staging capacity in bytes (0 = unbounded)")
		highWatermark = flag.Float64("high-watermark", 0.95, "staging fraction above which writes are rejected")
		flushBytes    = flag.Int64("flush-bytes", 0, "staged bytes that trigger a flush (0 = one platter)")
		flushAge      = flag.Duration("flush-age", 2*time.Second, "max staged age before a flush (0 = disabled)")
		flushInterval = flag.Duration("flush-interval", 50*time.Millisecond, "scheduler evaluation period")
		scrubEvery    = flag.Duration("scrub-interval", 25*time.Millisecond, "pause between background scrub picks")
		scrubTracks   = flag.Int("scrub-tracks", 2, "tracks sampled per scrub pass (0 = whole platter)")
		autoRebuild   = flag.Bool("auto-rebuild", true, "rebuild failed platters automatically")
		noRepair      = flag.Bool("no-repair", false, "disable the background scrubber and rebuilder")
		codecWorkers  = flag.Int("codec-workers", 0, "codec engine parallelism (0 = GOMAXPROCS, 1 = serial)")
		retryAfter    = flag.Duration("retry-after", time.Second, "backoff hint sent in Retry-After on 429/503")
		faultSeed     = flag.Uint64("fault-seed", 0, "seed for probabilistic fault-injection triggers")
		persistDir    = flag.String("persist-dir", "", "durability directory: snapshot+WAL recovery on start, fsync-before-ack while serving (empty = in-memory)")
		persistSnap   = flag.Int("persist-snapshot-every", 0, "WAL records between snapshots (0 = default)")
		backendKind   = flag.String("backend", "direct", "media backend: direct (no mechanical latency) or twin (calibrated library simulation)")
		policy        = flag.String("policy", "silica", "twin backend scheduling policy: silica, sp, or ns")
		twinSpeedup   = flag.Float64("twin-speedup", 0, "twin backend virtual-to-wall clock ratio (0 = default 200x)")
		clusterN      = flag.Int("cluster", 0, "router mode: shard the archive across N in-process libraries (consistent-hash placement + cross-library redundancy)")
		peers         = flag.String("peers", "", "router mode: comma-separated peer silicad URLs to route across (mutually exclusive with -cluster)")
		clusterSeed   = flag.Uint64("cluster-seed", 1, "router mode: ring placement seed (same seed + members = identical routing)")
		clusterVNodes = flag.Int("cluster-vnodes", 0, "router mode: virtual nodes per library (0 = default)")
	)
	var faultRules multiFlag
	flag.Var(&faultRules, "fault", "fault-injection rule (repeatable), e.g. op=media.write,mode=error,every=7,count=5")
	flag.Parse()

	cfg := gateway.DefaultConfig()
	cfg.WriteWorkers = *writeWorkers
	cfg.ReadWorkers = *readWorkers
	cfg.WriteQueue = *writeQueue
	cfg.ReadQueue = *readQueue
	cfg.Service.StagingCapacity = *stagingCap
	cfg.Service.CodecWorkers = *codecWorkers
	cfg.StagingHighWatermark = *highWatermark
	cfg.FlushBytes = *flushBytes
	cfg.FlushAge = *flushAge
	cfg.FlushInterval = *flushInterval
	cfg.Repair.ScrubInterval = *scrubEvery
	cfg.Repair.SampleTracks = *scrubTracks
	cfg.Repair.AutoRebuild = *autoRebuild
	cfg.DisableRepair = *noRepair
	cfg.RetryAfter = *retryAfter
	cfg.FaultSeed = *faultSeed
	cfg.FaultRules = faultRules
	cfg.Service.PersistDir = *persistDir
	cfg.Service.PersistSnapshotEvery = *persistSnap
	cfg.Backend = *backendKind
	cfg.BackendPolicy = *policy
	cfg.TwinSpeedup = *twinSpeedup
	if len(faultRules) > 0 {
		log.Printf("fault injection armed: %d rule(s), seed %d", len(faultRules), *faultSeed)
	}
	if *backendKind == "twin" {
		sp := *twinSpeedup
		if sp <= 0 {
			sp = backend.DefaultSpeedup
		}
		log.Printf("twin backend: policy %s, speedup %gx", *policy, sp)
	}

	if *clusterN > 0 && *peers != "" {
		fmt.Fprintln(os.Stderr, "-cluster and -peers are exclusive router modes; pick one")
		os.Exit(2)
	}
	if *clusterN > 0 || *peers != "" {
		runCluster(cfg, *listen, *clusterN, *peers, *clusterSeed, *clusterVNodes, *persistDir, *retryAfter)
		return
	}

	g, err := gateway.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *persistDir != "" {
		// Kill-mode fault rules terminate the process abruptly — the
		// crash-recovery harness's stand-in for kill -9 at an exact
		// pipeline point. Exit code 137 mirrors SIGKILL.
		g.Faults().SetKill(func() {
			log.Printf("fault injection: kill point reached, exiting")
			os.Exit(137)
		})
		log.Printf("persistence enabled: %s", *persistDir)
	}

	srv := &http.Server{Addr: *listen, Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("silicad listening on %s (staging cap %d, flush-age %s)", *listen, *stagingCap, *flushAge)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %s; draining", sig)
	case err := <-errc:
		log.Printf("server error: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := g.Close(); err != nil && err != gateway.ErrClosed {
		log.Printf("gateway close: %v", err)
		os.Exit(1)
	}
	snap := g.Snapshot()
	log.Printf("drained: %d completed, %d rejected, %d flushes, %d platters written",
		snap.Counters.Completed, snap.Counters.Rejected, snap.Counters.Flushes,
		snap.Service.PlattersWritten)
}

// runCluster serves the multi-library router: N in-process library
// shards (-cluster) or a fleet of peer daemons (-peers), behind one
// consistent-hash placement layer with cross-library redundancy.
func runCluster(cfg gateway.Config, listen string, n int, peers string, seed uint64, vnodes int, persistDir string, retryAfter time.Duration) {
	ccfg := cluster.Config{
		Seed:                 seed,
		VNodes:               vnodes,
		RetryAfter:           retryAfter,
		PersistSnapshotEvery: int64(cfg.Service.PersistSnapshotEvery),
	}
	// The router gets its own injector: -fault rules naming cluster.*
	// ops fire on the placement/membership log appends (shard-level
	// rules still arm inside each library via the gateway template).
	rinj := faults.New(cfg.FaultSeed)
	for _, r := range cfg.FaultRules {
		if err := rinj.ArmString(r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	ccfg.Faults = rinj
	if persistDir != "" {
		// Kill-mode rules on router ops exit abruptly — the crash-drill
		// stand-in for kill -9 of the router process. 137 mirrors SIGKILL.
		rinj.SetKill(func() {
			log.Printf("fault injection: router kill point reached, exiting")
			os.Exit(137)
		})
		log.Printf("router persistence enabled: %s", cluster.RouterPersistDir(persistDir))
	}
	var c *cluster.Cluster
	var err error
	if n > 0 {
		cfg.Service.PersistDir = "" // LocalConfig roots per-shard subdirectories
		c, err = cluster.NewLocal(cluster.LocalConfig{
			Libraries:  n,
			Cluster:    ccfg,
			Gateway:    cfg,
			PersistDir: persistDir,
		})
		if err == nil {
			log.Printf("cluster router: %d in-process libraries, ring seed %d", n, seed)
		}
	} else {
		if persistDir != "" {
			ccfg.PersistDir = cluster.RouterPersistDir(persistDir)
		}
		urls := strings.Split(peers, ",")
		for i := range urls {
			urls[i] = strings.TrimSpace(urls[i])
		}
		c, err = cluster.NewRemote(ccfg, urls)
		if err == nil {
			log.Printf("cluster router: %d peer daemons, ring seed %d", len(urls), seed)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: listen, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("silicad (cluster router) listening on %s", listen)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %s; draining", sig)
	case err := <-errc:
		log.Printf("server error: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := c.Close(); err != nil {
		log.Printf("cluster close: %v", err)
		os.Exit(1)
	}
	st := c.Status()
	log.Printf("drained: %d keys across %d libraries, %d cross-library rebuild reads",
		st.Keys, len(st.Libraries), st.RebuildReads)
}
