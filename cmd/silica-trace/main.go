// Command silica-trace generates and characterizes synthetic cloud
// archival workloads: the Figure 1 and Figure 2 statistics, and
// JSON-exported read traces for the simulator.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"silica/internal/experiments"
	"silica/internal/workload"
)

func main() {
	fig := flag.String("fig", "", "characterization to print: 1a, 1b, 1c, 2 (empty = all)")
	gen := flag.String("generate", "", "generate a trace instead: typical, iops, or volume")
	out := flag.String("o", "-", "output file for -generate (default stdout)")
	seed := flag.Uint64("seed", 1, "random seed")
	platters := flag.Int("platters", 4000, "platters in the target library")
	duration := flag.Float64("hours", 12, "core trace duration in hours")
	zipf := flag.Float64("zipf", 0, "zipf skew exponent (0 = uniform)")
	flag.Parse()

	if *gen != "" {
		generate(*gen, *out, *seed, *platters, *duration, *zipf)
		return
	}
	if *fig == "" || *fig == "1a" {
		fmt.Println(experiments.Fig1a(*seed))
	}
	if *fig == "" || *fig == "1b" {
		fmt.Println(experiments.Fig1b(200000, *seed))
	}
	if *fig == "" || *fig == "1c" {
		fmt.Println(experiments.Fig1c(*seed))
	}
	if *fig == "" || *fig == "2" {
		fmt.Println(experiments.Fig2(*seed))
	}
}

type jsonRequest struct {
	ID         int64   `json:"id"`
	Platter    int64   `json:"platter"`
	StartTrack int     `json:"start_track"`
	TrackCount int     `json:"track_count"`
	Bytes      int64   `json:"bytes"`
	Arrival    float64 `json:"arrival_sec"`
}

func generate(profile, out string, seed uint64, platters int, hours, zipf float64) {
	var p workload.Profile
	switch profile {
	case "typical":
		p = workload.Typical
	case "iops":
		p = workload.IOPS
	case "volume":
		p = workload.Volume
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", profile)
		os.Exit(1)
	}
	tr, err := workload.Generate(workload.TraceConfig{
		Profile:       p,
		Duration:      hours * 3600,
		Warmup:        hours * 300,
		Cooldown:      hours * 300,
		Platters:      platters,
		TracksPerFile: workload.TracksFor(10e6),
		TrackBytes:    10e6,
		ZipfSkew:      zipf,
		Seed:          seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	for _, r := range tr.Requests {
		if err := enc.Encode(jsonRequest{
			ID: int64(r.ID), Platter: int64(r.Platter), StartTrack: r.StartTrack,
			TrackCount: r.TrackCount, Bytes: r.Bytes, Arrival: r.Arrival,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d requests (core window %.0f-%.0f s)\n",
		len(tr.Requests), tr.CoreStart, tr.CoreEnd)
}
