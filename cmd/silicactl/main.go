// Command silicactl drives an in-process Silica service through the
// full data path: put files, flush them to (in-memory) glass, read
// them back through the channel and coding stack, and crypto-shred
// them. It reads a simple command script from stdin or arguments:
//
//	silicactl put acct/name <file
//	silicactl demo
//
// The demo subcommand runs a self-contained put/flush/get/fail/
// recover/delete tour and prints service statistics. The health and
// repair subcommands talk to a running silicad over HTTP:
//
//	silicactl health -url http://host:7070
//	silicactl repair -url http://host:7070 <platter-id>
//	silicactl metrics -url http://host:7070
//	silicactl top -url http://host:7070 -interval 1s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"silica/internal/backend"
	"silica/internal/cluster"
	"silica/internal/costmodel"
	"silica/internal/gateway"
	"silica/internal/media"
	"silica/internal/obs"
	"silica/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "demo":
		demo()
	case "put", "get", "delete":
		single(os.Args[1], os.Args[2:])
	case "health":
		health(os.Args[2:])
	case "repair":
		repairCmd(os.Args[2:])
	case "metrics":
		metricsCmd(os.Args[2:])
	case "cost":
		costCmd(os.Args[2:])
	case "top":
		top(os.Args[2:])
	case "cluster":
		clusterCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  silicactl demo                 full tour: put/flush/get/fail/recover/delete
  silicactl put  acct/name       store stdin as a file (then flush + read back)
  silicactl get  acct/name       (only meaningful within one process: see demo)
  silicactl delete acct/name
  silicactl health -url URL      platter health registry of a running silicad
  silicactl repair -url URL ID   fail + rebuild platter ID on a running silicad
  silicactl metrics -url URL     dump a running silicad's raw /metrics text
  silicactl top -url URL         live telemetry table from /metrics (-n 1 for one shot)
  silicactl cluster -url URL     ring ownership, per-library health, and redundancy
                                 placement of a silicad -cluster router (/v1/cluster)
  silicactl cost                 §9 TCO comparison tape/HDD/Silica (-url to price on a
                                 running silicad; -archive-tb/-horizon/... set workload)`)
	os.Exit(2)
}

// costCmd prints the §9 total-cost-of-ownership comparison. By default
// it prices the workload locally (the model is pure computation); with
// -url it asks a running silicad's GET /v1/cost instead, exercising
// the HTTP surface end to end.
func costCmd(args []string) {
	fs := flag.NewFlagSet("cost", flag.ExitOnError)
	url := fs.String("url", "", "silicad base URL (empty = compute locally)")
	archive := fs.Float64("archive-tb", 0, "initial archive size in TB (0 = default workload)")
	horizon := fs.Float64("horizon", 0, "horizon in years")
	readTB := fs.Float64("read-tb-year", -1, "customer reads per year, TB")
	writeTB := fs.Float64("write-tb-year", -1, "ingress per year, TB")
	fs.Parse(args)

	wl := costmodel.DefaultWorkload()
	if *archive > 0 {
		wl.ArchiveTB = *archive
	}
	if *horizon > 0 {
		wl.HorizonYears = *horizon
	}
	if *readTB >= 0 {
		wl.ReadTBPerYear = *readTB
	}
	if *writeTB >= 0 {
		wl.WriteTBPerYear = *writeTB
	}

	var p gateway.CostPayload
	if *url != "" {
		var err error
		p, err = gateway.NewClient(*url).Cost(wl)
		check(err)
	} else {
		p = gateway.BuildCostPayload(wl)
	}

	fmt.Printf("workload: %.0f TB archive, %.0f y horizon, %.0f TB/y reads, %.0f TB/y ingress\n\n",
		p.Workload.ArchiveTB, p.Workload.HorizonYears, p.Workload.ReadTBPerYear, p.Workload.WriteTBPerYear)
	fmt.Printf("%-8s %10s %4s %12s %10s %10s %10s %10s %12s %10s %12s\n",
		"tech", "media", "mig", "migration", "scrub", "environ", "user-io", "process",
		"total $", "$/TB-y", "carbon kg")
	for _, e := range p.Technologies {
		b := e.Breakdown
		fmt.Printf("%-8s %10.0f %4d %12.0f %10.0f %10.0f %10.0f %10.0f %12.0f %10.4f %12.0f\n",
			b.Technology, b.Media, b.Migrations, b.MigrationIO, b.Scrubbing,
			b.Environmental, b.UserIO, b.Processing, e.Total, e.PerTBYear, b.CarbonKg)
	}
	fmt.Printf("\n%-40s %-5s %s\n", "dimension", "tape", "silica")
	for _, r := range p.Table2 {
		fmt.Printf("%-40s %-5s %s\n", r.Dimension, r.Tape, r.Silica)
	}
}

// metricsCmd dumps the raw Prometheus exposition of a running daemon —
// what a scrape job would see, and what `make obs-smoke` greps.
func metricsCmd(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:7070", "silicad base URL")
	fs.Parse(args)
	text, err := gateway.NewClient(*url).MetricsText()
	check(err)
	fmt.Print(text)
}

// top polls /metrics and renders the whole stack's telemetry as a
// compact table: per-class queue state and request percentiles, staging
// occupancy, codec engine load, and repair activity.
func top(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:7070", "silicad base URL")
	interval := fs.Duration("interval", time.Second, "refresh period")
	iters := fs.Int("n", 0, "refresh count (0 = until interrupted)")
	fs.Parse(args)
	c := gateway.NewClient(*url)
	for i := 0; *iters == 0 || i < *iters; i++ {
		if i > 0 {
			time.Sleep(*interval)
			fmt.Print("\033[H\033[2J") // home + clear between refreshes
		}
		samples, err := c.Metrics()
		check(err)
		st, berr := c.Backend()
		if berr != nil {
			st = backend.Status{} // older daemons have no /v1/backend
		}
		printTop(*url, samples, st)
	}
}

func printTop(url string, samples []obs.PromSample, bst backend.Status) {
	val := func(name string, labels map[string]string) float64 {
		s, _ := obs.FindSample(samples, name, labels)
		return s.Value
	}
	fmt.Printf("silica top — %s\n\n", url)
	fmt.Printf("%-7s %6s %5s %10s %10s %10s %10s %10s\n",
		"class", "queue", "cap", "admitted", "rejected", "done", "p50", "p99")
	for _, class := range []string{"put", "get", "delete"} {
		l := obs.L("class", class)
		lm := map[string]string{l.Key: l.Value}
		p50, _ := obs.HistQuantile(samples, "silica_gateway_request_seconds", lm, 0.50)
		p99, _ := obs.HistQuantile(samples, "silica_gateway_request_seconds", lm, 0.99)
		fmt.Printf("%-7s %6.0f %5.0f %10.0f %10.0f %10.0f %10s %10s\n",
			class,
			val("silica_gateway_queue_depth", lm),
			val("silica_gateway_queue_capacity", lm),
			val("silica_gateway_admitted_total", lm),
			val("silica_gateway_rejected_total", lm),
			val("silica_gateway_completed_total", lm),
			fmtSeconds(p50), fmtSeconds(p99))
	}
	flushP99, _ := obs.HistQuantile(samples, "silica_gateway_flush_seconds", nil, 0.99)
	fmt.Printf("\nstaging  %s used / %s cap, peak %s, %0.f file(s) pending\n",
		fmtBytes(val("silica_staging_used_bytes", nil)),
		fmtBytes(val("silica_staging_capacity_bytes", nil)),
		fmtBytes(val("silica_staging_peak_bytes", nil)),
		val("silica_staging_pending_files", nil))
	encP50, _ := obs.HistQuantile(samples, "silica_codec_encode_seconds", nil, 0.50)
	decP50, _ := obs.HistQuantile(samples, "silica_codec_decode_seconds", nil, 0.50)
	fmt.Printf("codec    %.0f/%.0f workers busy, %.0f jobs (%.0f token misses)\n",
		val("silica_codec_busy_workers", nil),
		val("silica_codec_workers", nil),
		val("silica_codec_jobs_total", nil),
		val("silica_codec_token_misses_total", nil))
	fmt.Printf("  ldpc   encode p50 %s (%.0f sectors, %.0f/s), decode p50 %s (%.0f sectors, %.0f/s)\n",
		fmtSeconds(encP50),
		val("silica_codec_sectors_total", map[string]string{"op": "encode"}),
		val("silica_codec_sectors_per_second", map[string]string{"op": "encode"}),
		fmtSeconds(decP50),
		val("silica_codec_sectors_total", map[string]string{"op": "decode"}),
		val("silica_codec_sectors_per_second", map[string]string{"op": "decode"}))
	fmt.Printf("flush    %.0f passes, p99 %s\n",
		val("silica_gateway_flushes_total", nil), fmtSeconds(flushP99))
	fmt.Printf("repair   %.0f scrubs (%.0f sector failures), rebuilds %.0f done / %.0f failed, %.0f active\n",
		val("silica_repair_scrubs_total", nil),
		val("silica_repair_scrub_sector_failures_total", nil),
		val("silica_repair_rebuilds_total", map[string]string{"outcome": "done"}),
		val("silica_repair_rebuilds_total", map[string]string{"outcome": "failed"}),
		val("silica_repair_rebuilds_active", nil))
	fmt.Printf("health  ")
	for _, s := range samples {
		if s.Name == "silica_platter_health" && s.Value > 0 {
			fmt.Printf(" %.0f %s", s.Value, s.Labels["state"])
		}
	}
	fmt.Println()
	printBackend(samples, bst)
	printClusterTop(samples)
}

// printClusterTop adds the router's silica_cluster_* families to top
// when the scraped daemon is a cluster router (single-library daemons
// export none of them and print nothing).
func printClusterTop(samples []obs.PromSample) {
	ring, ok := obs.FindSample(samples, "silica_cluster_ring_version", nil)
	if !ok {
		return
	}
	val := func(name string, labels map[string]string) float64 {
		s, _ := obs.FindSample(samples, name, labels)
		return s.Value
	}
	fmt.Printf("cluster  ring v%.0f, %.0f keys, %.0f live / %.0f dead libraries\n",
		ring.Value,
		val("silica_cluster_keys", nil),
		val("silica_cluster_libraries", map[string]string{"state": "alive"}),
		val("silica_cluster_libraries", map[string]string{"state": "dead"}))
	fmt.Printf("  %.0f rebuild reads, %.0f keys / %s moved by rebalance, %.0f library kills\n",
		val("silica_cluster_rebuild_reads_total", nil),
		val("silica_cluster_rebalance_moved_keys_total", nil),
		fmtBytes(val("silica_cluster_rebalance_moved_bytes_total", nil)),
		val("silica_cluster_library_kills_total", nil))
	routed := map[string]float64{}
	var libs []string
	for _, s := range samples {
		if s.Name != "silica_cluster_routed_total" {
			continue
		}
		lib := s.Labels["library"]
		if _, seen := routed[lib]; !seen {
			libs = append(libs, lib)
		}
		routed[lib] += s.Value
	}
	if len(libs) > 0 {
		sort.Strings(libs)
		fmt.Printf("  routed ")
		for _, lib := range libs {
			fmt.Printf(" %s=%.0f", lib, routed[lib])
		}
		fmt.Println()
	}
}

// clusterCmd renders a cluster router's GET /v1/cluster: ring
// ownership, per-library serving state, and redundancy placement.
// -rebalance runs a reconcile pass first (POST /v1/cluster/rebalance)
// and prints its report, including the aggregated per-key errors.
func clusterCmd(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:7070", "cluster router base URL")
	rebalance := fs.Bool("rebalance", false, "run a reconcile pass before reporting")
	workers := fs.Int("workers", 0, "rebalance parallelism (0 = router default)")
	fs.Parse(args)
	rebalanceFailed := false
	if *rebalance {
		rebalanceFailed = runRebalance(*url, *workers)
	}
	st, err := cluster.FetchStatus(nil, *url)
	check(err)

	durability := "in-memory directory (lost on router restart)"
	if st.Persist {
		durability = "durable directory (recovers across router restarts)"
	}
	fmt.Printf("cluster — %s (ring v%d, seed %d, %d vnodes/library)\n",
		*url, st.RingVersion, st.Seed, st.VNodes)
	fmt.Printf("persist   %s\n\n", durability)
	fmt.Printf("keys      %d placed: %d fully replicated, %d unprotected\n",
		st.Keys, st.Replicated, st.Unprotected)
	fmt.Printf("activity  %d cross-library rebuild reads, %d keys / %s moved by rebalance, %d rebalance errors\n\n",
		st.RebuildReads, st.MovedKeys, fmtBytes(float64(st.MovedBytes)), st.RebalanceErrors)
	fmt.Printf("%-12s %-6s %6s %9s %9s %8s %9s %10s %8s\n",
		"library", "state", "own%", "primaries", "replicas", "routed", "in-flight", "staging", "flushes")
	for _, l := range st.Libraries {
		state := "alive"
		if !l.Alive {
			state = "dead"
		} else if l.State.Degraded {
			state = "degr"
		}
		fmt.Printf("%-12s %-6s %5.1f%% %9d %9d %8d %9d %10s %8d\n",
			l.Name, state, 100*l.Frac, l.PrimaryKeys, l.ReplicaKeys, l.Routed,
			l.State.InFlight, fmtBytes(float64(l.State.Staging.Used)), l.State.Flushes)
	}
	if rebalanceFailed {
		os.Exit(1)
	}
}

// runRebalance posts /v1/cluster/rebalance and prints the report. A
// report with per-key errors still prints — the aggregation is the
// feature — but exits nonzero so scripts notice.
func runRebalance(url string, workers int) bool {
	target := url + "/v1/cluster/rebalance"
	if workers > 0 {
		target += fmt.Sprintf("?workers=%d", workers)
	}
	resp, err := http.Post(target, "application/json", nil)
	check(err)
	defer resp.Body.Close()
	var rep cluster.RebalanceReport
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		check(fmt.Errorf("rebalance: http %d: %s", resp.StatusCode, e.Error))
	}
	check(json.NewDecoder(resp.Body).Decode(&rep))
	fmt.Printf("rebalance %d keys examined, %d moved (%s), %d lost, %d errors\n",
		rep.KeysExamined, rep.KeysMoved, fmtBytes(float64(rep.BytesMoved)), rep.Lost, rep.Errors)
	for _, s := range rep.ErrorSamples {
		fmt.Printf("  error   %s\n", s)
	}
	fmt.Println()
	return rep.Errors > 0
}

// printBackend renders the media backend's mechanical telemetry: the
// twin's virtual clock, in-flight charges, per-class scheduler queues,
// the Figure-6 drive-time breakdown, and shuttle motion totals. A
// direct backend gets a single identifying line.
func printBackend(samples []obs.PromSample, bst backend.Status) {
	if bst.Backend == "" {
		return
	}
	if bst.Backend != "twin" {
		fmt.Printf("backend  %s (no mechanical latency)\n", bst.Backend)
		return
	}
	val := func(name string, labels map[string]string) float64 {
		s, _ := obs.FindSample(samples, name, labels)
		return s.Value
	}
	fmt.Printf("backend  twin policy=%s speedup=%gx, virtual clock %.1fs, %.0f op(s) in flight\n",
		bst.Policy, bst.Speedup,
		val("silica_backend_virtual_seconds", nil),
		val("silica_backend_inflight_ops", nil))
	fmt.Printf("  queues ")
	for _, class := range []string{"read", "burn", "rebuild", "scrub"} {
		fmt.Printf(" %s=%.0f", class, val("silica_backend_queue_depth", map[string]string{"class": class}))
	}
	fmt.Println()
	fmt.Printf("  drives ")
	for _, state := range []string{"read", "verify", "mount", "switch", "idle"} {
		fmt.Printf(" %s=%.0f%%", state, 100*val("silica_backend_drive_util", map[string]string{"state": state}))
	}
	fmt.Println()
	fmt.Printf("  shuttles %.0f travels (%.1fs moving, %.1fs congested), %.0f platter ops\n",
		val("silica_backend_shuttle_travels", nil),
		val("silica_backend_shuttle_travel_seconds_total", nil),
		val("silica_backend_shuttle_congestion_seconds_total", nil),
		val("silica_backend_shuttle_platter_ops", nil))
}

func fmtSeconds(s float64) string {
	if s <= 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// health prints a running daemon's liveness summary and per-platter
// health registry, including transition histories.
func health(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:7070", "silicad base URL")
	fs.Parse(args)
	c := gateway.NewClient(*url)
	hz, err := c.Healthz()
	check(err)
	snap, err := c.HealthPlatters()
	check(err)
	fmt.Printf("status: %s", hz.Status)
	if hz.Status != "ok" {
		fmt.Printf(" (%d degraded sets, %d rebuilds active)", hz.DegradedSets, hz.RebuildsActive)
	}
	fmt.Println()
	fmt.Printf("platters:")
	for state, n := range snap.Counts {
		fmt.Printf(" %d %s", n, state)
	}
	fmt.Println()
	for _, p := range snap.Platters {
		set := "unassigned"
		if p.Set >= 0 {
			kind := "info"
			if p.Redundancy {
				kind = "red"
			}
			set = fmt.Sprintf("set %d pos %d (%s)", p.Set, p.SetPos, kind)
		}
		fmt.Printf("  platter %-4d %-10s %s\n", p.Platter, p.Health, set)
		for _, tr := range p.History {
			fmt.Printf("    %s -> %-10s %s\n", tr.From, tr.To, tr.Reason)
		}
	}
}

// repairCmd asks a running daemon to fail and rebuild one platter.
func repairCmd(args []string) {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:7070", "silicad base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: silicactl repair -url URL <platter-id>")
		os.Exit(2)
	}
	id, err := strconv.Atoi(fs.Arg(0))
	check(err)
	c := gateway.NewClient(*url)
	check(c.Repair(media.PlatterID(id)))
	fmt.Printf("platter %d queued for rebuild\n", id)
}

func splitKey(s string) (string, string) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		fmt.Fprintf(os.Stderr, "key %q must be account/name\n", s)
		os.Exit(2)
	}
	return s[:i], s[i+1:]
}

// single runs one operation against a fresh in-memory service; put
// also flushes and verifies a read-back so the invocation demonstrates
// the whole path.
func single(op string, args []string) {
	if len(args) < 1 {
		usage()
	}
	account, name := splitKey(args[0])
	svc, err := service.New(service.DefaultConfig())
	check(err)
	switch op {
	case "put":
		data, err := io.ReadAll(os.Stdin)
		check(err)
		_, err = svc.Put(account, name, data)
		check(err)
		check(svc.Flush())
		got, err := svc.Get(account, name)
		check(err)
		if !bytes.Equal(got, data) {
			fmt.Fprintln(os.Stderr, "read-back mismatch")
			os.Exit(1)
		}
		st := svc.Stats()
		fmt.Printf("stored %d bytes durably: %d platter(s), %d sectors, verify margin %.2f\n",
			len(data), st.PlattersWritten, st.SectorsWritten, st.MinVerifyMargin)
	default:
		fmt.Fprintf(os.Stderr, "%s requires a long-lived service; run `silicactl demo`\n", op)
		os.Exit(2)
	}
}

func demo() {
	cfg := service.DefaultConfig()
	svc, err := service.New(cfg)
	check(err)

	fmt.Println("== Put: four archive files across two accounts")
	payloads := map[string][]byte{}
	for i, key := range []string{"acme/ledger", "acme/backup", "globex/report", "globex/media"} {
		account, name := splitKey(key)
		data := bytes.Repeat([]byte(fmt.Sprintf("%s:%d|", key, i)), 400+300*i)
		payloads[key] = data
		_, err := svc.Put(account, name, data)
		check(err)
		fmt.Printf("  staged %-14s %6d bytes\n", key, len(data))
	}
	fmt.Printf("  staging holds %d bytes\n\n", svc.StagedBytes())

	fmt.Println("== Flush: encode (LDPC + 3-level NC), write, verify")
	check(svc.Flush())
	st := svc.Stats()
	fmt.Printf("  %d platters written, %d sectors, redundancy %d bytes, min verify margin %.2f\n\n",
		st.PlattersWritten, st.SectorsWritten, st.RedundancyBytes, st.MinVerifyMargin)

	fmt.Println("== Get: read back through the noisy channel")
	for key, want := range payloads {
		account, name := splitKey(key)
		got, err := svc.Get(account, name)
		check(err)
		if !bytes.Equal(got, want) {
			fmt.Fprintf(os.Stderr, "  %s: MISMATCH\n", key)
			os.Exit(1)
		}
		fmt.Printf("  %-14s ok (%d bytes)\n", key, len(got))
	}

	// Complete a platter-set so cross-platter recovery has redundancy
	// to draw on, then fail a platter and recover through the set.
	fmt.Println("\n== Filling a platter-set for cross-platter protection")
	platterBytes := int(cfg.Geom.PlatterUserBytes())
	for i := 0; i < cfg.SetInfo; i++ {
		name := fmt.Sprintf("bulk%d", i)
		_, err := svc.Put("acme", name, bytes.Repeat([]byte{byte(i + 1)}, platterBytes*3/4))
		check(err)
		check(svc.Flush())
	}
	st = svc.Stats()
	fmt.Printf("  sets completed: %d (+%d redundancy platters)\n\n", st.SetsCompleted, st.RedundancyPlatters)

	fmt.Println("== Failing a platter; reading through 16x-style set recovery")
	v, err := svc.Metadata().Get(struct{ Account, Name string }{"acme", "bulk0"})
	check(err)
	failed := media.PlatterID(v.Extents[0].Platter)
	check(svc.FailPlatter(failed))
	got, err := svc.Get("acme", "bulk0")
	check(err)
	fmt.Printf("  recovered %d bytes from platter-set peers (recoveries: %d)\n\n",
		len(got), svc.Stats().PlatterRecovers)

	fmt.Println("== Delete: crypto-shredding")
	check(svc.Delete("globex", "report"))
	if _, err := svc.Get("globex", "report"); err == nil {
		fmt.Fprintln(os.Stderr, "deleted file still readable")
		os.Exit(1)
	}
	fmt.Println("  globex/report unreadable forever (key destroyed)")
	final := svc.Stats()
	fmt.Printf("\nfinal stats: %d files, %d platters, %d sector repairs, %d track rebuilds, %d set recoveries\n",
		final.Files, final.PlattersWritten, final.SectorRepairs, final.TrackRebuilds, final.PlatterRecovers)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
