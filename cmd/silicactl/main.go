// Command silicactl drives an in-process Silica service through the
// full data path: put files, flush them to (in-memory) glass, read
// them back through the channel and coding stack, and crypto-shred
// them. It reads a simple command script from stdin or arguments:
//
//	silicactl put acct/name <file
//	silicactl demo
//
// The demo subcommand runs a self-contained put/flush/get/fail/
// recover/delete tour and prints service statistics.
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"silica/internal/media"
	"silica/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "demo":
		demo()
	case "put", "get", "delete":
		single(os.Args[1], os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  silicactl demo                 full tour: put/flush/get/fail/recover/delete
  silicactl put  acct/name       store stdin as a file (then flush + read back)
  silicactl get  acct/name       (only meaningful within one process: see demo)
  silicactl delete acct/name`)
	os.Exit(2)
}

func splitKey(s string) (string, string) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		fmt.Fprintf(os.Stderr, "key %q must be account/name\n", s)
		os.Exit(2)
	}
	return s[:i], s[i+1:]
}

// single runs one operation against a fresh in-memory service; put
// also flushes and verifies a read-back so the invocation demonstrates
// the whole path.
func single(op string, args []string) {
	if len(args) < 1 {
		usage()
	}
	account, name := splitKey(args[0])
	svc, err := service.New(service.DefaultConfig())
	check(err)
	switch op {
	case "put":
		data, err := io.ReadAll(os.Stdin)
		check(err)
		_, err = svc.Put(account, name, data)
		check(err)
		check(svc.Flush())
		got, err := svc.Get(account, name)
		check(err)
		if !bytes.Equal(got, data) {
			fmt.Fprintln(os.Stderr, "read-back mismatch")
			os.Exit(1)
		}
		st := svc.Stats()
		fmt.Printf("stored %d bytes durably: %d platter(s), %d sectors, verify margin %.2f\n",
			len(data), st.PlattersWritten, st.SectorsWritten, st.MinVerifyMargin)
	default:
		fmt.Fprintf(os.Stderr, "%s requires a long-lived service; run `silicactl demo`\n", op)
		os.Exit(2)
	}
}

func demo() {
	cfg := service.DefaultConfig()
	svc, err := service.New(cfg)
	check(err)

	fmt.Println("== Put: four archive files across two accounts")
	payloads := map[string][]byte{}
	for i, key := range []string{"acme/ledger", "acme/backup", "globex/report", "globex/media"} {
		account, name := splitKey(key)
		data := bytes.Repeat([]byte(fmt.Sprintf("%s:%d|", key, i)), 400+300*i)
		payloads[key] = data
		_, err := svc.Put(account, name, data)
		check(err)
		fmt.Printf("  staged %-14s %6d bytes\n", key, len(data))
	}
	fmt.Printf("  staging holds %d bytes\n\n", svc.StagedBytes())

	fmt.Println("== Flush: encode (LDPC + 3-level NC), write, verify")
	check(svc.Flush())
	st := svc.Stats()
	fmt.Printf("  %d platters written, %d sectors, redundancy %d bytes, min verify margin %.2f\n\n",
		st.PlattersWritten, st.SectorsWritten, st.RedundancyBytes, st.MinVerifyMargin)

	fmt.Println("== Get: read back through the noisy channel")
	for key, want := range payloads {
		account, name := splitKey(key)
		got, err := svc.Get(account, name)
		check(err)
		if !bytes.Equal(got, want) {
			fmt.Fprintf(os.Stderr, "  %s: MISMATCH\n", key)
			os.Exit(1)
		}
		fmt.Printf("  %-14s ok (%d bytes)\n", key, len(got))
	}

	// Complete a platter-set so cross-platter recovery has redundancy
	// to draw on, then fail a platter and recover through the set.
	fmt.Println("\n== Filling a platter-set for cross-platter protection")
	platterBytes := int(cfg.Geom.PlatterUserBytes())
	for i := 0; i < cfg.SetInfo; i++ {
		name := fmt.Sprintf("bulk%d", i)
		_, err := svc.Put("acme", name, bytes.Repeat([]byte{byte(i + 1)}, platterBytes*3/4))
		check(err)
		check(svc.Flush())
	}
	st = svc.Stats()
	fmt.Printf("  sets completed: %d (+%d redundancy platters)\n\n", st.SetsCompleted, st.RedundancyPlatters)

	fmt.Println("== Failing a platter; reading through 16x-style set recovery")
	v, err := svc.Metadata().Get(struct{ Account, Name string }{"acme", "bulk0"})
	check(err)
	failed := media.PlatterID(v.Extents[0].Platter)
	check(svc.FailPlatter(failed))
	got, err := svc.Get("acme", "bulk0")
	check(err)
	fmt.Printf("  recovered %d bytes from platter-set peers (recoveries: %d)\n\n",
		len(got), svc.Stats().PlatterRecovers)

	fmt.Println("== Delete: crypto-shredding")
	check(svc.Delete("globex", "report"))
	if _, err := svc.Get("globex", "report"); err == nil {
		fmt.Fprintln(os.Stderr, "deleted file still readable")
		os.Exit(1)
	}
	fmt.Println("  globex/report unreadable forever (key destroyed)")
	final := svc.Stats()
	fmt.Printf("\nfinal stats: %d files, %d platters, %d sector repairs, %d track rebuilds, %d set recoveries\n",
		final.Files, final.PlattersWritten, final.SectorRepairs, final.TrackRebuilds, final.PlatterRecovers)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
