// Command silica-load drives an archive gateway with concurrent
// closed-loop clients and reports per-class latency histograms plus a
// lost/corrupted-object audit.
//
// Two modes:
//
//	silica-load                       # in-process gateway (default)
//	silica-load -url http://host:7070 # against a running silicad
//
// The in-process mode can provoke deliberate overload with a small
// -staging-cap, demonstrating admission control (rejected > 0) while
// the final verification pass proves no accepted object was lost or
// corrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"silica/internal/gateway"
)

func main() {
	var (
		url           = flag.String("url", "", "gateway base URL; empty runs an in-process gateway")
		clients       = flag.Int("clients", 32, "concurrent closed-loop clients")
		ops           = flag.Int("ops", 16, "operations per client")
		readFrac      = flag.Float64("read-frac", 0.4, "fraction of ops that are reads")
		deleteFrac    = flag.Float64("delete-frac", 0.0, "fraction of ops that are deletes")
		objectBytes   = flag.Int("object-bytes", 2048, "payload size per object")
		seed          = flag.Uint64("seed", 1, "workload RNG seed")
		retries       = flag.Int("retries", 8, "max retries after an overload rejection")
		backoff       = flag.Duration("backoff", 5*time.Millisecond, "base retry backoff")
		stagingCap    = flag.Int64("staging-cap", 0, "in-process mode: staging capacity (0 = unbounded)")
		highWatermark = flag.Float64("high-watermark", 0.95, "in-process mode: staging rejection watermark")
	)
	flag.Parse()

	lc := gateway.LoadConfig{
		Clients:        *clients,
		OpsPerClient:   *ops,
		ReadFraction:   *readFrac,
		DeleteFraction: *deleteFrac,
		ObjectBytes:    *objectBytes,
		Seed:           *seed,
		MaxRetries:     *retries,
		RetryBackoff:   *backoff,
	}

	var api gateway.API
	if *url != "" {
		api = gateway.NewClient(*url)
		fmt.Printf("driving %s: %d clients x %d ops, %d-byte objects\n",
			*url, lc.Clients, lc.OpsPerClient, lc.ObjectBytes)
	} else {
		cfg := gateway.DefaultConfig()
		cfg.Service.StagingCapacity = *stagingCap
		cfg.StagingHighWatermark = *highWatermark
		g, err := gateway.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer g.Close()
		api = g
		fmt.Printf("in-process gateway: %d clients x %d ops, %d-byte objects, staging cap %d\n",
			lc.Clients, lc.OpsPerClient, lc.ObjectBytes, *stagingCap)
	}

	rep := gateway.RunLoad(api, lc)
	fmt.Print(rep)

	if rep.Lost > 0 || rep.Corrupted > 0 {
		fmt.Fprintln(os.Stderr, "FAIL: committed objects lost or corrupted")
		os.Exit(1)
	}
	fmt.Println("verification: all committed objects intact")
}
