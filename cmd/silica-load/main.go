// Command silica-load drives an archive gateway with concurrent
// closed-loop clients and reports per-class latency histograms plus a
// lost/corrupted-object audit.
//
// Two modes:
//
//	silica-load                       # in-process gateway (default)
//	silica-load -url http://host:7070 # against a running silicad
//
// The in-process mode can provoke deliberate overload with a small
// -staging-cap, demonstrating admission control (rejected > 0) while
// the final verification pass proves no accepted object was lost or
// corrupted. It can also kill a platter mid-run (-kill-platter): the
// background scrubber must detect the failure, rebuild the platter
// from its set, and the byte-exact audit must still find every
// committed object intact.
//
// With -cluster N the in-process archive is sharded across N library
// instances behind the consistent-hash router (internal/cluster), and
// -kill-library escalates the drill from one platter to a whole
// library: a member is destroyed mid-run, reads fail over to the
// cross-library redundancy copies, a fresh library is rebuilt in its
// place, and the audit must still find every acknowledged object
// byte-exact.
//
// -kill-router (cluster mode, needs -persist-dir) escalates once more:
// the router itself dies mid-run — its placement log freezes exactly as
// under kill -9, so nothing un-synced can be acked — and a successor
// router recovers the directory from -persist-dir/router, re-attaches
// the still-running libraries, and takes over serving. The byte-exact
// audit then runs against the successor: every write the dead router
// acknowledged must come back intact.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"silica/internal/cluster"
	"silica/internal/gateway"
	"silica/internal/media"
	"silica/internal/obs"
	"silica/internal/repair"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	var (
		url           = flag.String("url", "", "gateway base URL; empty runs an in-process gateway")
		clients       = flag.Int("clients", 32, "concurrent closed-loop clients")
		ops           = flag.Int("ops", 16, "operations per client")
		readFrac      = flag.Float64("read-frac", 0.4, "fraction of ops that are reads")
		deleteFrac    = flag.Float64("delete-frac", 0.0, "fraction of ops that are deletes")
		objectBytes   = flag.Int("object-bytes", 2048, "payload size per object")
		seed          = flag.Uint64("seed", 1, "workload RNG seed")
		retries       = flag.Int("retries", 8, "max retries after an overload rejection")
		backoff       = flag.Duration("backoff", 5*time.Millisecond, "base retry backoff")
		stagingCap    = flag.Int64("staging-cap", 0, "in-process mode: staging capacity (0 = unbounded)")
		highWatermark = flag.Float64("high-watermark", 0.95, "in-process mode: staging rejection watermark")
		platterTracks = flag.Int("platter-tracks", 0, "in-process mode: shrink platters to this many tracks (0 = default)")
		killPlatter   = flag.Bool("kill-platter", false, "in-process mode: fail a set member mid-run; scrubber must detect, rebuild must restore it")
		clusterN      = flag.Int("cluster", 0, "in-process mode: shard across N libraries behind the consistent-hash router")
		killLibrary   = flag.Bool("kill-library", false, "cluster mode: destroy an entire library mid-run; reads must fail over to cross-library redundancy and the rebuild must restore it")
		killRouter    = flag.Bool("kill-router", false, "cluster mode: kill -9 the router mid-run (persist log freezes), recover a successor from -persist-dir, and audit every acked object against it")
		rebuildWait   = flag.Duration("rebuild-wait", 60*time.Second, "max wait for the killed platter's rebuild before verification")
		clientRetry   = flag.Bool("client-retry", false, "-url mode: retry 429/503 inside the HTTP client (jittered backoff, honors Retry-After)")
		faultSeed     = flag.Uint64("fault-seed", 0, "in-process mode: seed for probabilistic fault triggers")
		persistDir    = flag.String("persist-dir", "", "in-process mode: durability directory (snapshot+WAL; empty = in-memory)")
		zipfSkew      = flag.Float64("zipf", 0, "read-popularity skew: 0 = uniform, larger concentrates reads on a hot set")
		backendKind   = flag.String("backend", "direct", "in-process mode: media backend, direct or twin")
		policy        = flag.String("policy", "silica", "twin backend scheduling policy: silica, sp, or ns")
		twinSpeedup   = flag.Float64("twin-speedup", 0, "twin backend virtual-to-wall clock ratio (0 = default)")
	)
	var faultRules multiFlag
	flag.Var(&faultRules, "fault", "in-process mode: fault-injection rule (repeatable), e.g. op=media.write,mode=error,every=7,count=5")
	flag.Parse()

	lc := gateway.LoadConfig{
		Clients:        *clients,
		OpsPerClient:   *ops,
		ReadFraction:   *readFrac,
		DeleteFraction: *deleteFrac,
		ObjectBytes:    *objectBytes,
		Seed:           *seed,
		MaxRetries:     *retries,
		RetryBackoff:   *backoff,
		ZipfSkew:       *zipfSkew,
	}

	if *killLibrary && *clusterN < 2 {
		fmt.Fprintln(os.Stderr, "-kill-library needs -cluster N with N >= 2 (redundancy must land on a second library)")
		os.Exit(2)
	}
	if *clusterN > 0 && *killPlatter {
		fmt.Fprintln(os.Stderr, "-kill-platter and -cluster are separate drills; pick one")
		os.Exit(2)
	}
	if *killRouter {
		if *clusterN < 1 || *persistDir == "" {
			fmt.Fprintln(os.Stderr, "-kill-router needs -cluster N and -persist-dir (the successor recovers from the router log)")
			os.Exit(2)
		}
		if *killLibrary {
			fmt.Fprintln(os.Stderr, "-kill-router and -kill-library are separate drills; pick one")
			os.Exit(2)
		}
		if *deleteFrac > 0 {
			// A delete that crashed between its durable tombstone and its
			// ack reads as gone on the successor while the client still
			// holds the bytes — a spurious Lost the audit cannot tell from
			// a real one. The router crash drill is a write/read drill.
			fmt.Fprintln(os.Stderr, "-kill-router needs -delete-frac 0 (unacked deletes are indistinguishable from loss in the audit)")
			os.Exit(2)
		}
	}

	var api gateway.API
	var g *gateway.Gateway
	var cl *cluster.Cluster
	if *url != "" {
		if *killPlatter {
			fmt.Fprintln(os.Stderr, "-kill-platter requires the in-process gateway (no -url)")
			os.Exit(2)
		}
		if *clusterN > 0 {
			fmt.Fprintln(os.Stderr, "-cluster requires the in-process gateway (no -url); point -url at a silicad -cluster router instead")
			os.Exit(2)
		}
		c := gateway.NewClient(*url)
		if *clientRetry {
			pol := gateway.DefaultRetryPolicy()
			pol.Seed = *seed
			c.Retry = pol
		}
		api = c
		fmt.Printf("driving %s: %d clients x %d ops, %d-byte objects\n",
			*url, lc.Clients, lc.OpsPerClient, lc.ObjectBytes)
	} else {
		if len(faultRules) > 0 && *killPlatter {
			fmt.Fprintln(os.Stderr, "-fault and -kill-platter are separate failure drills; pick one")
			os.Exit(2)
		}
		cfg := gateway.DefaultConfig()
		cfg.Service.StagingCapacity = *stagingCap
		cfg.StagingHighWatermark = *highWatermark
		cfg.FaultSeed = *faultSeed
		cfg.FaultRules = faultRules
		cfg.Service.PersistDir = *persistDir
		cfg.Backend = *backendKind
		cfg.BackendPolicy = *policy
		cfg.TwinSpeedup = *twinSpeedup
		if *platterTracks > 0 {
			cfg.Service.Geom.TracksPerPlatter = *platterTracks
		}
		if *clusterN > 0 {
			cfg.Service.PersistDir = "" // cluster roots per-shard subdirectories
			var err error
			cl, err = cluster.NewLocal(cluster.LocalConfig{
				Libraries:  *clusterN,
				Cluster:    cluster.Config{Seed: *seed},
				Gateway:    cfg,
				PersistDir: *persistDir,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer func() { cl.Close() }() // late-bound: -kill-router swaps cl to the successor
			api = cl
			fmt.Printf("in-process cluster: %d libraries, %d clients x %d ops, %d-byte objects\n",
				*clusterN, lc.Clients, lc.OpsPerClient, lc.ObjectBytes)
		} else {
			var err error
			g, err = gateway.New(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer g.Close()
			api = g
			fmt.Printf("in-process gateway: %d clients x %d ops, %d-byte objects, staging cap %d\n",
				lc.Clients, lc.OpsPerClient, lc.ObjectBytes, *stagingCap)
		}
	}

	if *killPlatter {
		victim := make(chan media.PlatterID, 1)
		go killSetMember(g, victim)
		lc.BeforeVerify = func() { awaitRebuild(g, victim, *rebuildWait) }
	}
	if *killLibrary {
		victim := make(chan string, 1)
		go killLibraryShard(cl, victim, *clients)
		lc.BeforeVerify = func() { awaitLibraryRebuild(cl, victim, *rebuildWait) }
	}
	var proxy *routerProxy
	if *killRouter {
		proxy = &routerProxy{cl: cl}
		api = proxy
		done := make(chan struct{})
		go killRouterDrill(proxy, *persistDir, *seed, *clients, done)
		lc.BeforeVerify = func() {
			select {
			case <-done:
			case <-time.After(*rebuildWait):
				fmt.Fprintln(os.Stderr, "FAIL: router crash drill did not complete in time")
				os.Exit(1)
			}
		}
	}

	rep := gateway.RunLoad(api, lc)
	if proxy != nil {
		// The audit above already ran against the successor (the proxy
		// swapped mid-run); report and close the successor, not the corpse.
		old := cl
		cl = proxy.cur()
		old.Close()
	}
	fmt.Print(rep)
	samples, serr := scrapeMetrics(api, g, cl)
	if serr != nil {
		fmt.Fprintf(os.Stderr, "metrics scrape: %v\n", serr)
	} else {
		printServerPercentiles(samples, rep)
		printLatencyBreakdown(samples)
	}
	if g != nil && len(faultRules) > 0 {
		fmt.Printf("faults: %d injected across %d rule(s)\n", g.Faults().Total(), len(faultRules))
	}
	if c, ok := api.(*gateway.Client); ok && c.RetriesTotal() > 0 {
		fmt.Printf("client: %d retries after 429/503\n", c.RetriesTotal())
	}
	if cl != nil {
		printClusterSummary(cl)
	}

	if rep.Lost > 0 || rep.Corrupted > 0 {
		fmt.Fprintln(os.Stderr, "FAIL: committed objects lost or corrupted")
		os.Exit(1)
	}
	fmt.Println("verification: all committed objects intact")
}

// scrapeMetrics fetches the gateway's /metrics samples, over HTTP in
// -url mode or straight off the in-process registry. In cluster mode
// the router's registry carries silica_cluster_* families; per-shard
// gateway families live in each shard's private registry.
func scrapeMetrics(api gateway.API, g *gateway.Gateway, cl *cluster.Cluster) ([]obs.PromSample, error) {
	if c, ok := api.(*gateway.Client); ok {
		return c.Metrics()
	}
	var buf bytes.Buffer
	reg := cl.Metrics
	if g != nil {
		reg = g.Metrics
	}
	if err := reg().WriteProm(&buf); err != nil {
		return nil, err
	}
	return obs.ParseProm(&buf)
}

// printServerPercentiles prints the gateway's own request p99 (derived
// from its histogram buckets) next to the client-observed p99, so time
// spent inside the gateway is separable from transport and retry
// overhead.
func printServerPercentiles(samples []obs.PromSample, rep gateway.LoadReport) {
	sums := rep.Latencies.Summaries()
	fmt.Println("latency p99, server vs client:")
	for _, class := range []string{"put", "get", "delete"} {
		cs, ok := sums[class]
		if !ok || cs.N == 0 {
			continue
		}
		server := "-"
		if sp, ok := obs.HistQuantile(samples, "silica_gateway_request_seconds",
			map[string]string{"class": class}, 0.99); ok {
			server = fmt.Sprintf("%.1fms", 1000*sp)
		}
		fmt.Printf("  %-7s server %8s   client %7.1fms\n", class, server, 1000*cs.P99)
	}
}

// histMean returns a histogram's mean (sum/count) from its exposition
// samples, or false when it has no observations.
func histMean(samples []obs.PromSample, name string, want map[string]string) (float64, bool) {
	sum, ok1 := obs.FindSample(samples, name+"_sum", want)
	cnt, ok2 := obs.FindSample(samples, name+"_count", want)
	if !ok1 || !ok2 || cnt.Value == 0 {
		return 0, false
	}
	return sum.Value / cnt.Value, true
}

// printLatencyBreakdown splits mean request latency into its queue,
// mechanical, and codec/other shares using the gateway's queue-wait
// histogram and the backend's mechanical spans. With the direct
// backend the mechanical share is zero by construction; under
// -backend twin it dominates, which is the whole point of the twin.
func printLatencyBreakdown(samples []obs.PromSample) {
	classOps := []struct{ class, op string }{{"get", "read"}, {"put", "burn"}}
	shown := false
	for _, co := range classOps {
		total, ok := histMean(samples, "silica_gateway_request_seconds",
			map[string]string{"class": co.class})
		if !ok {
			continue
		}
		queue, _ := histMean(samples, "silica_gateway_queue_wait_seconds",
			map[string]string{"class": co.class})
		mech, _ := histMean(samples, "silica_backend_mech_seconds",
			map[string]string{"op": co.op})
		codec := total - queue - mech
		if codec < 0 {
			// Burns are batched: one mechanical burn amortizes over many
			// puts, so the per-op mean can exceed the per-request mean.
			codec = 0
		}
		if !shown {
			fmt.Println("latency breakdown (mean, server side):")
			shown = true
		}
		fmt.Printf("  %-4s total %8.2fms = queue %8.2fms + mechanical %8.2fms + codec/other %8.2fms\n",
			co.class, 1000*total, 1000*queue, 1000*mech, 1000*codec)
	}
	if v, ok := obs.FindSample(samples, "silica_backend_virtual_seconds", nil); ok && v.Value > 0 {
		fmt.Printf("  twin: %.1f virtual seconds simulated\n", v.Value)
	}
}

// killSetMember waits for the first platter-set to complete, then
// fails its first information member — simulating a platter lost to
// media damage mid-run. The id is sent on victim for awaitRebuild.
func killSetMember(g *gateway.Gateway, victim chan<- media.PlatterID) {
	for {
		if g.Service().Stats().SetsCompleted > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, p := range g.Service().ListPlatters() {
		if p.Set == 0 && !p.Redundancy {
			if err := g.Service().FailPlatter(p.ID); err != nil {
				fmt.Fprintf(os.Stderr, "kill: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("kill: failed platter %d (set %d pos %d) mid-run\n", p.ID, p.Set, p.SetPos)
			victim <- p.ID
			return
		}
	}
	fmt.Fprintln(os.Stderr, "kill: completed set has no information members?")
	os.Exit(1)
}

// awaitRebuild blocks until the killed platter's health history shows
// the full healthy → failed → rebuilding → retired arc (a healthy
// replacement published in its place) and the service reports full
// redundancy again. Times out nonzero: a lost rebuild is a lost
// durability promise.
func awaitRebuild(g *gateway.Gateway, victim <-chan media.PlatterID, wait time.Duration) {
	var id media.PlatterID
	select {
	case id = <-victim:
	case <-time.After(wait):
		fmt.Fprintln(os.Stderr, "FAIL: no platter-set completed; nothing was killed")
		os.Exit(1)
	}
	deadline := time.Now().Add(wait)
	for {
		rec, ok := g.Service().Health().Get(id)
		if ok && rec.Health() == repair.Retired && !g.Degraded() {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "FAIL: platter %d not rebuilt within %s (health %v)\n",
				id, wait, rec.Health())
			os.Exit(1)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Print the arc the registry recorded, then let the byte-exact
	// audit in RunLoad prove no object was lost.
	for _, p := range g.HealthPlatters().Platters {
		if p.Platter != id {
			continue
		}
		fmt.Printf("rebuild: platter %d history:\n", id)
		for _, tr := range p.History {
			from := tr.From
			if from == "" {
				from = "(new)"
			}
			fmt.Printf("  %s -> %-10s %s\n", from, tr.To, tr.Reason)
		}
	}
	st := g.Service().Stats()
	fmt.Printf("rebuild: %d platters rebuilt, %d scrubbed sectors, %d health transitions\n",
		st.PlattersRebuilt, st.ScrubbedSectors, st.HealthTransitions)
}

// killLibraryShard waits until the cluster holds enough keys for the
// drill to mean something, then destroys the library owning the most
// primaries — the whole-failure-domain analogue of killSetMember. The
// victim's name is sent on victim for awaitLibraryRebuild.
func killLibraryShard(cl *cluster.Cluster, victim chan<- string, clients int) {
	threshold := clients / 4
	if threshold < 1 {
		threshold = 1
	}
	for cl.Keys() < threshold {
		time.Sleep(5 * time.Millisecond)
	}
	name, max := "", -1
	for lib, n := range cl.PrimaryCounts() {
		if n > max || (n == max && lib < name) {
			name, max = lib, n
		}
	}
	if err := cl.KillLibrary(name); err != nil {
		fmt.Fprintf(os.Stderr, "kill: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("kill: destroyed library %s mid-run (%d primary keys at time of death)\n", name, max)
	victim <- name
}

// awaitLibraryRebuild replaces the killed library with a fresh, empty
// one and rebalances: every key the victim held is rebuilt from its
// cross-library redundancy copy. A key with no surviving copy is a
// broken durability promise and fails the run; the byte-exact audit
// in RunLoad then proves the rebuilt copies are intact.
func awaitLibraryRebuild(cl *cluster.Cluster, victim <-chan string, wait time.Duration) {
	var name string
	select {
	case name = <-victim:
	case <-time.After(wait):
		fmt.Fprintln(os.Stderr, "FAIL: cluster never reached the kill threshold; nothing was killed")
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	rep, err := cl.RebuildLibrary(ctx, name, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: rebuilding library %s: %v\n", name, err)
		os.Exit(1)
	}
	if rep.Lost > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d key(s) had no surviving copy after losing %s\n", rep.Lost, name)
		os.Exit(1)
	}
	fmt.Printf("rebuild: library %s replaced; %d/%d keys moved, %d bytes migrated\n",
		name, rep.KeysMoved, rep.KeysExamined, rep.BytesMoved)
	if cl.Degraded() {
		fmt.Fprintln(os.Stderr, "FAIL: cluster still degraded after library rebuild")
		os.Exit(1)
	}
}

// routerProxy routes gateway.API calls at whatever router is current,
// so the load generator rides through a mid-run router replacement the
// way retrying HTTP clients ride through a silicad restart: ops that
// raced the crash fail (they were never acked), ops arriving during
// the swap block until the successor is serving.
type routerProxy struct {
	mu sync.RWMutex
	cl *cluster.Cluster
}

func (p *routerProxy) cur() *cluster.Cluster {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cl
}

func (p *routerProxy) Put(account, name string, data []byte) (int, error) {
	return p.cur().Put(account, name, data)
}
func (p *routerProxy) Get(account, name string) ([]byte, error) {
	return p.cur().Get(account, name)
}
func (p *routerProxy) Delete(account, name string) error {
	return p.cur().Delete(account, name)
}
func (p *routerProxy) Flush() error { return p.cur().Flush() }

// killRouterDrill waits for the run to place enough keys, then crashes
// the router: CrashPersist freezes its placement log exactly as kill -9
// would (no un-synced ack can escape), the member libraries are
// detached — they never died — and a successor router recovers the
// directory from the persist log, re-attaches the members, and takes
// over the proxy. Writes that raced the crash fail and are retried by
// the load generator against the successor.
func killRouterDrill(p *routerProxy, persistDir string, seed uint64, clients int, done chan<- struct{}) {
	old := p.cur()
	threshold := clients / 4
	if threshold < 1 {
		threshold = 1
	}
	for old.Keys() < threshold {
		time.Sleep(5 * time.Millisecond)
	}
	// Hold the swap lock across the crash: ops already inside the old
	// router race the freeze (and fail unacked, as under a real kill -9);
	// new ops queue until the successor is serving.
	p.mu.Lock()
	old.CrashPersist()
	handles := old.Detach()
	fmt.Printf("kill: crashed router mid-run (log frozen at %d keys); recovering from %s\n",
		old.Keys(), cluster.RouterPersistDir(persistDir))
	succ, err := cluster.New(cluster.Config{Seed: seed, PersistDir: cluster.RouterPersistDir(persistDir)})
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: successor router: %v\n", err)
		os.Exit(1)
	}
	for name, lib := range handles {
		if err := succ.AddLibrary(name, lib); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: re-attaching %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	p.cl = succ
	p.mu.Unlock()
	st := succ.Status()
	fmt.Printf("recover: successor router serving %d keys across %d libraries\n",
		st.Keys, len(st.Libraries))
	close(done)
}

// printClusterSummary reports ring placement and redundancy accounting
// after a cluster-mode run.
func printClusterSummary(cl *cluster.Cluster) {
	st := cl.Status()
	fmt.Printf("cluster: %d keys across %d libraries (ring v%d, seed %d)\n",
		st.Keys, len(st.Libraries), st.RingVersion, st.Seed)
	fmt.Printf("  redundancy: %d replicated, %d unprotected, %d cross-library rebuild reads\n",
		st.Replicated, st.Unprotected, st.RebuildReads)
	if st.MovedKeys > 0 {
		fmt.Printf("  rebalance: %d keys, %d bytes migrated\n", st.MovedKeys, st.MovedBytes)
	}
	for _, l := range st.Libraries {
		state := "alive"
		if !l.Alive {
			state = "dead"
		}
		fmt.Printf("  %-8s %-5s own %5.1f%%  primaries %4d  replicas %4d  routed %5d\n",
			l.Name, state, 100*l.Frac, l.PrimaryKeys, l.ReplicaKeys, l.Routed)
	}
}
