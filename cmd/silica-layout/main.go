// Command silica-layout plans platter-set configurations: Table 1's
// write-overhead / storage-rack trade-off, the §6 durability numbers,
// and a demonstration placement over a library floor plan.
package main

import (
	"flag"
	"fmt"
	"os"

	"silica/internal/experiments"
	"silica/internal/geometry"
	"silica/internal/layout"
	"silica/internal/stats"
)

func main() {
	info := flag.Int("info", 16, "information platters per set")
	red := flag.Int("red", 3, "redundancy platters per set")
	sets := flag.Int("sets", 5, "sets to place in the demo placement")
	sectorP := flag.Float64("sector-p", 1e-3, "per-sector LDPC failure probability")
	flag.Parse()

	fmt.Println(experiments.Table1())
	fmt.Println(experiments.Durability())

	size := *info + *red
	fmt.Printf("Requested configuration %d+%d:\n", *info, *red)
	fmt.Printf("  write-drive redundancy overhead: %.1f%%\n", 100*layout.WriteOverhead(*info, *red))
	racks := layout.MinStorageRacks(size, 10)
	fmt.Printf("  minimum storage racks: %d\n", racks)
	fmt.Printf("  track decode failure at sector p=%.0e: %.2e\n\n",
		*sectorP, stats.BinomialTail(108, 8, *sectorP))

	cfg := geometry.DefaultConfig()
	if racks > cfg.StorageRacks {
		cfg.StorageRacks = racks
	}
	l, err := geometry.NewLayout(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	placer := layout.NewPlacer(l)
	fmt.Printf("Placing %d sets of %d into a %d-storage-rack library:\n", *sets, size, cfg.StorageRacks)
	for s := 0; s < *sets; s++ {
		slots, err := placer.PlaceSet(size)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := layout.ValidateSet(slots); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  set %d: ", s)
		for _, a := range slots {
			fmt.Printf("r%ds%d ", a.Rack, a.Shelf)
		}
		fmt.Println()
	}
	fmt.Printf("%d slots occupied; every set blast-zone disjoint.\n", placer.Occupied())
}
