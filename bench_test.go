// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact), plus ablation benches for
// the design choices DESIGN.md calls out. Each simulation benchmark
// runs the corresponding experiment at a reduced scale; run
// cmd/silica-sim for the full-scale numbers recorded in
// EXPERIMENTS.md.
package silica_test

import (
	"testing"

	"silica/internal/controller"
	"silica/internal/experiments"
	"silica/internal/ldpc"
	"silica/internal/library"
	"silica/internal/media"
	"silica/internal/nc"
	"silica/internal/sim"
	"silica/internal/stats"
	"silica/internal/workload"
)

// benchScale keeps each simulated point under a second.
func benchScale() experiments.Scale {
	return experiments.Scale{TraceScale: 0.5, Duration: 1800, Platters: 500, Seed: 1}
}

func BenchmarkFig1aWriteReadRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1a(uint64(i))
		if r.MeanBytesRatio < 10 {
			b.Fatal("writes should dominate")
		}
	}
}

func BenchmarkFig1bReadSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1b(100000, uint64(i))
		if r.SmallReads < 0.5 {
			b.Fatal("small files should dominate reads")
		}
	}
}

func BenchmarkFig1cTailOverMedian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1c(uint64(i))
		if len(r.Ratios) != 30 {
			b.Fatal("30 data centers expected")
		}
	}
}

func BenchmarkFig2IngressSmoothing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(uint64(i))
		if r.Ratios[0] <= r.Ratios[len(r.Ratios)-1] {
			b.Fatal("peak/mean should shrink with window")
		}
	}
}

func BenchmarkFig3Mechanics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(5000, uint64(i))
		if r.Crab.Max() > 3.02+1e-9 {
			b.Fatal("crab calibration broken")
		}
	}
}

func BenchmarkTable1PlatterSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if r.Rows[1].StorageRacks != 7 {
			b.Fatal("16+3 should need 7 racks")
		}
	}
}

func BenchmarkDurabilityMath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Durability()
		if r.TrackFailP > 1e-12 {
			b.Fatal("durability regression")
		}
	}
}

func BenchmarkFig5aDriveThroughputIOPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5a(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5bDriveThroughputVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5b(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5cShuttleSweepIOPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5c(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5dShuttleSweepVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5d(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6DriveUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if u := r.Rows[workload.Typical]; u.Utilization() < 0.9 {
			b.Fatalf("utilization %v too low", u.Utilization())
		}
	}
}

func BenchmarkFig7aCongestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7a(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Shuttles) - 1
		if r.SP[last] <= r.Silica[last] {
			b.Fatal("SP should congest more than Silica")
		}
	}
}

func BenchmarkFig7bPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7b(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if r.Saving[len(r.Saving)-1] <= 0 {
			b.Fatal("Silica should save energy over SP")
		}
	}
}

func BenchmarkFig7cWorkStealing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7c(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Unavailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9FullLibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -------------------------------------------------------

// runOnce drives one library configuration with one trace and reports
// the tail.
func runOnce(b *testing.B, mutate func(*library.Config), profile workload.Profile, zipf float64) float64 {
	b.Helper()
	cfg := library.DefaultConfig()
	cfg.Platters = 500
	cfg.Seed = 11
	mutate(&cfg)
	lib, err := library.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(workload.TraceConfig{
		Profile:       profile,
		Duration:      1800,
		Platters:      cfg.Platters,
		TracksPerFile: workload.TracksFor(10e6),
		TrackBytes:    10e6,
		ZipfSkew:      zipf,
		RateScale:     0.5,
		Seed:          11,
	})
	if err != nil {
		b.Fatal(err)
	}
	core := stats.NewSample()
	for _, r := range tr.Requests {
		r := r
		core := core
		r.Done = func(t float64) { core.Add(t - r.Arrival) }
	}
	reqs := make([]*controller.Request, len(tr.Requests))
	copy(reqs, tr.Requests)
	lib.RunTrace(reqs, tr.CoreEnd)
	return core.P999()
}

// BenchmarkAblationStealingMode compares reactive (default) vs
// proactive work stealing under Zipf skew.
func BenchmarkAblationStealingMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reactive := runOnce(b, func(c *library.Config) { c.ProactiveStealing = false }, workload.Volume, 2.5)
		proactive := runOnce(b, func(c *library.Config) { c.ProactiveStealing = true }, workload.Volume, 2.5)
		b.ReportMetric(reactive, "reactive-tail-s")
		b.ReportMetric(proactive, "proactive-tail-s")
	}
}

// BenchmarkAblationPrefetch measures the mount-pipelining knob.
func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := runOnce(b, func(c *library.Config) { c.Shuttles = 40; c.Prefetch = false }, workload.IOPS, 0)
		on := runOnce(b, func(c *library.Config) { c.Shuttles = 40; c.Prefetch = true }, workload.IOPS, 0)
		b.ReportMetric(off, "prefetch-off-tail-s")
		b.ReportMetric(on, "prefetch-on-tail-s")
	}
}

// BenchmarkAblationFastSwitch quantifies what verification would cost
// without dual-mounted fast switching: utilization collapses to reads
// only.
func BenchmarkAblationFastSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := library.DefaultConfig()
		cfg.Platters = 500
		for _, verify := range []bool{true, false} {
			cfg.Verification = verify
			lib, err := library.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := workload.Generate(workload.TraceConfig{
				Profile: workload.Typical, Duration: 1800, Platters: cfg.Platters,
				TracksPerFile: workload.TracksFor(10e6), TrackBytes: 10e6,
				RateScale: 0.5, Seed: 11,
			})
			if err != nil {
				b.Fatal(err)
			}
			reqs := make([]*controller.Request, len(tr.Requests))
			copy(reqs, tr.Requests)
			lib.RunTrace(reqs, tr.CoreEnd)
			u := lib.DriveUtilization(lib.Sim().Now())
			if verify {
				b.ReportMetric(u.Utilization()*100, "util-with-verify-%")
			} else {
				b.ReportMetric(u.Utilization()*100, "util-without-verify-%")
			}
		}
	}
}

// BenchmarkAblationNCGroupSize sweeps the within-track group size at
// fixed ~8% overhead: large groups buy orders of magnitude in track
// durability (the §5 binomial argument).
func BenchmarkAblationNCGroupSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := nc.GroupLossProb(nc.LevelParams{I: 25, R: 2}, 1e-3)
		big := nc.GroupLossProb(nc.LevelParams{I: 100, R: 8}, 1e-3)
		if big >= small {
			b.Fatal("bigger groups should be more durable at equal overhead")
		}
		b.ReportMetric(small, "loss-p-25+2")
		b.ReportMetric(big, "loss-p-100+8")
	}
}

// BenchmarkAblationLDPCIterations measures the decode-iteration budget
// against residual failure rate on a noisy channel.
func BenchmarkAblationLDPCIterations(b *testing.B) {
	code := ldpc.MustNewCode(512, 384, 1)
	rng := sim.NewRNG(5)
	msg := make([]uint8, code.K)
	for i := range msg {
		msg[i] = uint8(rng.Uint64() & 1)
	}
	cw := code.Encode(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, iters := range []int{5, 50} {
			fails := 0
			for trial := 0; trial < 20; trial++ {
				rx := append([]uint8(nil), cw...)
				for _, j := range rng.Perm(code.N)[:8] {
					rx[j] ^= 1
				}
				if res := code.DecodeBP(ldpc.HardLLR(rx, 2), iters); !res.OK {
					fails++
				}
			}
			if iters == 5 {
				b.ReportMetric(float64(fails), "fails-5-iters")
			} else {
				b.ReportMetric(float64(fails), "fails-50-iters")
			}
		}
	}
}

// BenchmarkSchedulerThroughput measures raw scheduler operations.
func BenchmarkSchedulerThroughput(b *testing.B) {
	s := controller.NewScheduler(20)
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &controller.Request{
			ID: controller.RequestID(i), Platter: media.PlatterID(rng.Intn(4000)),
			Bytes: 1e6, Arrival: float64(i),
		}
		s.Add(r, rng.Intn(20))
		if i%8 == 0 {
			if p, ok := s.SelectPlatter(rng.Intn(20), nil); ok {
				s.Take(p)
			}
		}
	}
}

// BenchmarkTapeVsSilica regenerates the §1-2 motivating comparison.
func BenchmarkTapeVsSilica(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TapeVsSilica(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if r.IOPSSilica >= r.IOPSTape {
			b.Fatal("silica should beat tape on IOPS")
		}
		if r.DRTape >= r.DRSilica {
			b.Fatal("tape should beat silica on disaster recovery")
		}
	}
}

// BenchmarkAblationSuite runs the design-choice sweep table.
func BenchmarkAblationSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}
